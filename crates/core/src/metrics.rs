//! Simulation results and the paper's error metric.

use crate::technique::code_cache::CodeCacheStats;
use crate::technique::mode::WrongPathMode;
use crate::technique::wrongpath::ConvergenceStats;
use ffsim_obs::{CpiStack, Log2Hist, PhaseProfiler, TraceEvent};
use ffsim_uarch::{BranchStats, CacheStats, DramStats, TlbStats};
use std::time::Duration;

/// Observability artifacts collected during a run when the
/// [`ObsConfig`](ffsim_obs::ObsConfig) enables tracing and/or profiling:
/// the event trace, the wrong-path shape histograms, and the host-phase
/// profile. `None` on a fully disabled run — the observer-effect
/// invariant guarantees every other [`SimResult`] field is identical
/// either way.
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    /// Buffered trace events: timing-model events followed by frontend
    /// events, both on the cycle timebase (frontend events are rebased
    /// onto their triggering branch's fetch cycle). Export with
    /// [`ffsim_obs::chrome_trace`].
    pub events: Vec<TraceEvent>,
    /// Events evicted from the bounded rings during the run.
    pub dropped_events: u64,
    /// Wrong-path instructions injected per misprediction episode
    /// (compare to the paper's Table III wrong-path footprints).
    pub wp_episode_len: Log2Hist,
    /// Instructions scanned before the wrong path converged with the
    /// future correct path (convergence-exploitation mode only).
    pub conv_distance: Log2Hist,
    /// Host-phase wall-time attribution for the run (enabled when
    /// [`ObsConfig::profile`](ffsim_obs::ObsConfig) is set; an inert
    /// disabled profiler otherwise). Phases cover the emulator, handoff,
    /// timing pipeline and technique hooks; see
    /// [`ffsim_obs::prof::Phase`].
    pub profile: PhaseProfiler,
}

/// Wrong-path fault-handling counters (squashes, watchdog trips, wild
/// fetches) — re-exported from the functional layer.
pub use ffsim_emu::WrongPathFaultStats as FaultStats;

/// The complete result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// The wrong-path modeling technique used.
    pub mode: WrongPathMode,
    /// Correct-path instructions simulated (retired).
    pub instructions: u64,
    /// Simulated core cycles.
    pub cycles: u64,
    /// Wrong-path instructions injected into the pipeline.
    pub wrong_path_instructions: u64,
    /// Branch prediction statistics (timing-model predictor).
    pub branch: BranchStats,
    /// Convergence-exploitation statistics (non-zero only in that mode).
    pub convergence: ConvergenceStats,
    /// Code-cache statistics (non-zero only in reconstruction modes).
    pub code_cache: CodeCacheStats,
    /// Emulator basic-block cache statistics (non-zero only when the
    /// frontend emulates wrong paths, i.e. wrong-path-emulation mode).
    pub block_cache: ffsim_emu::BlockCacheStats,
    /// L1 instruction cache statistics.
    pub l1i: CacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// Last-level cache statistics.
    pub llc: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Instruction TLB statistics.
    pub itlb: TlbStats,
    /// Data TLB statistics.
    pub dtlb: TlbStats,
    /// Host wall-clock time of the run (simulation speed comparisons).
    pub wall_time: Duration,
    /// Wrong-path fault handling counters (faults squashed, watchdog
    /// trips, wild fetches). Fatal faults are not recorded here — they
    /// surface as [`SimError`](crate::SimError) from `Simulator::run`.
    pub faults: FaultStats,
    /// A 64-bit digest of the final architectural state (registers, pc,
    /// logical memory). Runs that retire the same correct path end with
    /// the same digest, whatever happened on wrong paths — the invariant
    /// the fault-injection harness checks.
    pub state_digest: u64,
    /// Per-cycle stall attribution over the measured sample. Its
    /// [`CpiStack::total`] equals [`SimResult::cycles`] exactly, so
    /// [`SimResult::error_vs`] gaps between wrong-path techniques can be
    /// decomposed into which stall class moved. Always collected — the
    /// accounting rides the existing per-retire bookkeeping.
    pub cpi: CpiStack,
    /// Event trace and wrong-path histograms; `Some` only when the run's
    /// [`ObsConfig`](ffsim_obs::ObsConfig) enabled observability.
    pub obs: Option<ObsReport>,
}

impl SimResult {
    /// Projected performance: retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Wrong-path instructions relative to correct-path instructions, in
    /// percent — the paper's Table II metric (100% means as many
    /// wrong-path as correct-path instructions).
    #[must_use]
    pub fn wrong_path_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.wrong_path_instructions as f64 * 100.0 / self.instructions as f64
        }
    }

    /// The paper's performance estimation error against a reference run
    /// (normally [`WrongPathMode::WrongPathEmulation`]), in percent.
    /// Negative means this technique *underestimates* performance, the
    /// signature of unmodeled wrong-path prefetching (Fig. 1).
    #[must_use]
    pub fn error_vs(&self, reference: &SimResult) -> f64 {
        let ref_ipc = reference.ipc();
        if ref_ipc == 0.0 {
            0.0
        } else {
            (self.ipc() - ref_ipc) / ref_ipc * 100.0
        }
    }

    /// Host-side simulation slowdown relative to a reference run
    /// (normally [`WrongPathMode::NoWrongPath`], the fastest technique).
    #[must_use]
    pub fn slowdown_vs(&self, reference: &SimResult) -> f64 {
        let ref_secs = reference.wall_time.as_secs_f64();
        if ref_secs == 0.0 {
            1.0
        } else {
            self.wall_time.as_secs_f64() / ref_secs
        }
    }

    /// Branch mispredictions per kilo-instruction.
    #[must_use]
    pub fn branch_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.branch.mispredicts() as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// L2 misses per kilo-instruction (correct path only).
    #[must_use]
    pub fn l2_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2.misses.get(ffsim_uarch::PathKind::Correct) as f64 * 1000.0
                / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(mode: WrongPathMode, instructions: u64, cycles: u64) -> SimResult {
        SimResult {
            mode,
            instructions,
            cycles,
            wrong_path_instructions: 0,
            branch: BranchStats::default(),
            convergence: ConvergenceStats::default(),
            code_cache: CodeCacheStats::default(),
            block_cache: ffsim_emu::BlockCacheStats::default(),
            l1i: CacheStats::default(),
            l1d: CacheStats::default(),
            l2: CacheStats::default(),
            llc: CacheStats::default(),
            dram: DramStats::default(),
            itlb: TlbStats::default(),
            dtlb: TlbStats::default(),
            wall_time: Duration::from_millis(100),
            faults: FaultStats::default(),
            state_digest: 0,
            cpi: CpiStack::new(),
            obs: None,
        }
    }

    #[test]
    fn ipc_and_error() {
        let slow = result(WrongPathMode::NoWrongPath, 1000, 2000); // ipc 0.5
        let fast = result(WrongPathMode::WrongPathEmulation, 1000, 1000); // ipc 1.0
        assert!((slow.ipc() - 0.5).abs() < 1e-12);
        assert!((slow.error_vs(&fast) + 50.0).abs() < 1e-9, "-50% error");
        assert!((fast.error_vs(&fast)).abs() < 1e-12);
    }

    #[test]
    fn wrong_path_fraction_percent() {
        let mut r = result(WrongPathMode::WrongPathEmulation, 1000, 1000);
        r.wrong_path_instructions = 2400;
        assert!((r.wrong_path_fraction() - 240.0).abs() < 1e-9);
    }

    #[test]
    fn zero_division_guards() {
        let r = result(WrongPathMode::NoWrongPath, 0, 0);
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.wrong_path_fraction(), 0.0);
        assert_eq!(r.branch_mpki(), 0.0);
        assert_eq!(r.error_vs(&r), 0.0);
    }

    #[test]
    fn slowdown() {
        let mut a = result(WrongPathMode::NoWrongPath, 1, 1);
        let mut b = result(WrongPathMode::WrongPathEmulation, 1, 1);
        a.wall_time = Duration::from_millis(100);
        b.wall_time = Duration::from_millis(1300);
        assert!((b.slowdown_vs(&a) - 13.0).abs() < 1e-9);
    }
}
