//! The out-of-order core timing model.
//!
//! A one-pass timestamping pipeline model in the spirit of Sniper's core
//! models: each instruction, processed in fetch order, is assigned fetch /
//! dispatch / issue / complete (and, for correct-path instructions, retire)
//! cycles subject to:
//!
//! * fetch width, instruction-cache misses, and taken-branch fetch breaks,
//! * frontend pipeline depth with decode-buffer backpressure,
//! * ROB / issue-queue / load-queue / store-queue occupancy,
//! * register (RAW) dependences through the architectural register file,
//! * functional-unit counts and latencies (pipelined or blocking),
//! * load latencies from the full cache/TLB/DRAM hierarchy,
//! * in-order retirement at the configured width.
//!
//! Wrong-path instructions flow through the very same stages — occupying
//! fetch slots, window entries and functional units, and touching the
//! caches according to the active wrong-path technique — but vacate the
//! window at the mispredicted branch's resolution instead of retiring.
//! This is what makes the four wrong-path modes directly comparable: the
//! performance model is identical, only the wrong-path instruction streams
//! differ (paper §IV).

use ffsim_emu::MemAccess;
use ffsim_isa::{Addr, ExecClass, Instr, NUM_ARCH_REGS};
use ffsim_obs::{CpiStack, StallClass};
use ffsim_uarch::{CoreConfig, Level, MemoryHierarchy, PathKind};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Maps the hierarchy level that served an access to the stall class that
/// charges cycles to it.
fn level_class(level: Level) -> StallClass {
    match level {
        Level::L1 => StallClass::L1Bound,
        Level::L2 => StallClass::L2Bound,
        Level::Llc => StallClass::LlcBound,
        Level::Memory => StallClass::DramBound,
    }
}

/// Extra decode-buffer slack (cycles) between fetch and dispatch
/// backpressure.
const DECODE_SLACK: u64 = 2;

/// How a wrong-path load's latency is modeled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoadTiming {
    /// Access the real cache hierarchy (address is known).
    Real,
    /// Assume an L1D hit: fixed L1 latency, no cache-state change. This is
    /// what instruction reconstruction must do for every wrong-path memory
    /// operation, since addresses cannot be reconstructed (§III-A, §V-C).
    AssumeL1Hit,
}

/// The pipeline timestamps assigned to one instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InstrTimes {
    /// Cycle the instruction was fetched.
    pub fetch: u64,
    /// Cycle it entered the out-of-order window.
    pub dispatch: u64,
    /// Cycle it began execution.
    pub issue: u64,
    /// Cycle its result became available (branch resolution point for
    /// branches).
    pub complete: u64,
}

fn class_index(c: ExecClass) -> usize {
    match c {
        ExecClass::IntAlu => 0,
        ExecClass::IntMul => 1,
        ExecClass::IntDiv => 2,
        ExecClass::FpAdd => 3,
        ExecClass::FpMul => 4,
        ExecClass::FpDiv => 5,
        ExecClass::Load => 6,
        ExecClass::Store => 7,
        ExecClass::Branch => 8,
    }
}

const ALL_CLASSES: [ExecClass; 9] = [
    ExecClass::IntAlu,
    ExecClass::IntMul,
    ExecClass::IntDiv,
    ExecClass::FpAdd,
    ExecClass::FpMul,
    ExecClass::FpDiv,
    ExecClass::Load,
    ExecClass::Store,
    ExecClass::Branch,
];

/// Out-of-order window occupancy: vacate cycles of in-flight instructions
/// in the ROB (dispatch order), issue queue, and load/store queues.
///
/// Wrong-path injection operates on a *clone* of this state
/// ([`Pipeline::begin_wrong_path`]): squashed instructions occupy window
/// entries while they are in flight, but their bookkeeping must not leak
/// into the post-resolution correct path.
#[derive(Clone, Default, Debug)]
pub struct WindowState {
    rob: VecDeque<u64>,
    iq: BinaryHeap<Reverse<u64>>,
    lq: VecDeque<u64>,
    sq: VecDeque<u64>,
}

impl WindowState {
    /// Field-wise `clone_from`: the derived `Clone` allocates four fresh
    /// collections, and this runs once per injection episode. The std
    /// `clone_from` impls reuse the destination's allocations.
    fn copy_from(&mut self, src: &WindowState) {
        self.rob.clone_from(&src.rob);
        self.iq.clone_from(&src.iq);
        self.lq.clone_from(&src.lq);
        self.sq.clone_from(&src.sq);
    }
}

/// The core timing model. See the module-level documentation for the
/// modeling approach.
#[derive(Debug)]
pub struct Pipeline {
    cfg: CoreConfig,
    hierarchy: MemoryHierarchy,
    // Frontend state.
    fetch_cycle: u64,
    fetch_in_cycle: usize,
    last_fetch_line: Option<u64>,
    line_shift: u32,
    // Dataflow state: completion cycle of each architectural register's
    // latest writer.
    reg_ready: [u64; NUM_ARCH_REGS],
    // Correct-path window occupancy.
    window: WindowState,
    // Functional units: next-free cycle per server.
    fu_free: [Vec<u64>; 9],
    // Retirement.
    last_retire: u64,
    retired_in_cycle: usize,
    retired: u64,
    wrong_path_injected: u64,
    // CPI-stack accounting: retire gaps are attributed to the stall class
    // on the backward critical path of the retiring instruction, so the
    // components telescope to exactly `cycles()`.
    cpi: CpiStack,
    // Stall class each architectural register's latest correct-path writer
    // completed under — propagates memory-boundness down RAW chains.
    reg_class: [StallClass; NUM_ARCH_REGS],
    // Culprit profile of the most recently fed instruction:
    // (critical-path class, cycles of memory latency beyond the FU).
    last_profile: (StallClass, u64),
    // Misprediction-recovery state: set by `redirect`, consumed by the
    // first correct-path retire after it.
    redirect_pending: bool,
    // Fetch cycles consumed by wrong-path fetch since the last correct
    // retire (charged to the WrongPathFetch lane at recovery).
    wp_fetch_pending: u64,
    last_wp_fetch_cycle: u64,
    // Retired scratch window recycled across injection episodes so
    // `begin_wrong_path` is allocation-free in steady state.
    wp_spare: Option<WindowState>,
}

impl Pipeline {
    /// Creates an idle pipeline over a fresh memory hierarchy.
    #[must_use]
    pub fn new(cfg: CoreConfig) -> Pipeline {
        let hierarchy = MemoryHierarchy::new(&cfg);
        let fu_free = ALL_CLASSES.map(|c| vec![0u64; cfg.fu_pool(c).count.max(1)]);
        let line_shift = cfg.l1i.line_bytes.trailing_zeros();
        Pipeline {
            cfg,
            hierarchy,
            fetch_cycle: 0,
            fetch_in_cycle: 0,
            last_fetch_line: None,
            line_shift,
            reg_ready: [0; NUM_ARCH_REGS],
            window: WindowState::default(),
            fu_free,
            last_retire: 0,
            retired_in_cycle: 0,
            retired: 0,
            wrong_path_injected: 0,
            cpi: CpiStack::new(),
            reg_class: [StallClass::Base; NUM_ARCH_REGS],
            last_profile: (StallClass::Base, 0),
            redirect_pending: false,
            wp_fetch_pending: 0,
            last_wp_fetch_cycle: u64::MAX,
            wp_spare: None,
        }
    }

    /// The memory hierarchy (stats inspection).
    #[must_use]
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Resets the hierarchy's statistics, keeping all warm state (cache
    /// and TLB contents, predictor-visible history). Used at the warmup
    /// boundary of a measured sample.
    pub fn reset_hierarchy_stats(&mut self) {
        self.hierarchy.reset_stats();
    }

    /// Total cycles elapsed (cycle of the last retirement).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.last_retire
    }

    /// Correct-path instructions retired.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Wrong-path instructions injected into the pipeline.
    #[must_use]
    pub fn wrong_path_injected(&self) -> u64 {
        self.wrong_path_injected
    }

    /// The CPI stack accumulated since construction (or the last
    /// [`Pipeline::reset_cpi`]). Its [`CpiStack::total`] equals
    /// [`Pipeline::cycles`] minus the cycle count at the last reset.
    #[must_use]
    pub fn cpi(&self) -> CpiStack {
        self.cpi
    }

    /// Zeroes the CPI stack (warmup boundary). Attribution after the reset
    /// telescopes from the current retire cycle, so the components of the
    /// measured sample still sum exactly to its cycle count.
    pub fn reset_cpi(&mut self) {
        self.cpi.reset();
    }

    /// The cycle the next instruction would be fetched.
    #[must_use]
    pub fn next_fetch_cycle(&self) -> u64 {
        self.fetch_cycle
    }

    /// Snapshot of the register-dependence scoreboard, taken before
    /// injecting a wrong path (whose register writes must not leak into
    /// the post-resolution correct path).
    #[must_use]
    pub fn snapshot_regs(&self) -> [u64; NUM_ARCH_REGS] {
        self.reg_ready
    }

    /// Restores a register-dependence snapshot (wrong-path flush).
    pub fn restore_regs(&mut self, snapshot: [u64; NUM_ARCH_REGS]) {
        self.reg_ready = snapshot;
    }

    /// Ends the current fetch group (taken branch): the next instruction
    /// fetches in a new cycle.
    pub fn break_fetch_group(&mut self) {
        if self.fetch_in_cycle > 0 {
            self.fetch_cycle += 1;
            self.fetch_in_cycle = 0;
        }
        self.last_fetch_line = None;
    }

    /// Redirects fetch to resume at `cycle` (misprediction recovery:
    /// squash + rename restore + refetch). Unlike
    /// [`Pipeline::break_fetch_group`], this *resets* the fetch cursor —
    /// wherever wrong-path fetch had advanced to, the frontend is squashed
    /// and restarts at the recovery point.
    pub fn redirect(&mut self, cycle: u64) {
        self.fetch_cycle = cycle;
        self.fetch_in_cycle = 0;
        self.last_fetch_line = None;
        self.redirect_pending = true;
    }

    fn fetch_one(&mut self, pc: Addr, path: PathKind) -> (u64, Level) {
        let line = pc >> self.line_shift;
        let mut served_by = Level::L1;
        if self.last_fetch_line != Some(line) {
            let res = self.hierarchy.fetch(pc, self.fetch_cycle, path);
            served_by = res.served_by;
            if res.served_by != Level::L1 {
                // The L1I hit latency is pipelined into the frontend depth;
                // only the excess stalls fetch.
                let stall = res.latency - self.cfg.l1i.latency;
                self.fetch_cycle += stall;
                self.fetch_in_cycle = 0;
                if path == PathKind::Wrong {
                    self.wp_fetch_pending += stall;
                }
            }
            self.last_fetch_line = Some(line);
        }
        if self.fetch_in_cycle >= self.cfg.fetch_width {
            self.fetch_cycle += 1;
            self.fetch_in_cycle = 0;
        }
        self.fetch_in_cycle += 1;
        // Each distinct cycle in which wrong-path instructions occupy fetch
        // slots is bandwidth stolen from post-recovery refill.
        if path == PathKind::Wrong && self.fetch_cycle != self.last_wp_fetch_cycle {
            self.wp_fetch_pending += 1;
            self.last_wp_fetch_cycle = self.fetch_cycle;
        }
        (self.fetch_cycle, served_by)
    }

    /// Computes the issue cycle on the least-loaded server of the class.
    /// The booking is only committed for instructions that actually
    /// execute: wrong-path instructions squashed before issue (the flush
    /// happens first) must not hold functional units.
    fn acquire_fu(&mut self, class: ExecClass, ready: u64, squash_at: Option<u64>) -> (u64, u64) {
        let pool = self.cfg.fu_pool(class);
        let servers = &mut self.fu_free[class_index(class)];
        let (best, _) = servers
            .iter()
            .enumerate()
            .min_by_key(|(_, &free)| free)
            // Invariant: every server vector is built `count.max(1)` long
            // in `Pipeline::new`, so the pool is never empty.
            .expect("pool is non-empty");
        let issue = ready.max(servers[best]);
        if squash_at.is_none_or(|resolve| issue < resolve) {
            servers[best] = issue + if pool.pipelined { 1 } else { pool.latency };
        }
        (issue, pool.latency)
    }

    /// Sends one instruction through fetch→dispatch→issue→complete.
    ///
    /// `flush_at` is `None` for correct-path instructions (they will
    /// retire) and `Some(resolve)` for wrong-path instructions (they
    /// vacate the window when the mispredicted branch resolves).
    #[allow(clippy::too_many_arguments)] // one timing model entry point, mirrored stages
    fn feed(
        &mut self,
        window: &mut WindowState,
        pc: Addr,
        instr: &Instr,
        mem: Option<MemAccess>,
        path: PathKind,
        load_timing: LoadTiming,
        flush_at: Option<u64>,
    ) -> InstrTimes {
        let class = instr.exec_class();
        let (fetch, fetch_level) = self.fetch_one(pc, path);

        // Dispatch: wait for window resources. Invariant: the pops below
        // cannot fail — `SimConfig::validate` rejects zero-sized windows,
        // so `len() >= size` implies the structure is non-empty.
        // `window_clamp` remembers which full resource (if any) pushed
        // dispatch back the furthest, for CPI attribution.
        let mut dispatch = fetch + self.cfg.frontend_depth;
        let mut window_clamp = None;
        if window.rob.len() >= self.cfg.rob_size {
            let oldest = window.rob.pop_front().expect("rob non-empty");
            if oldest > dispatch {
                dispatch = oldest;
                window_clamp = Some(StallClass::RobFull);
            }
        }
        if window.iq.len() >= self.cfg.iq_size {
            let Reverse(earliest) = window.iq.pop().expect("iq non-empty");
            if earliest > dispatch {
                dispatch = earliest;
                window_clamp = Some(StallClass::IqFull);
            }
        }
        if instr.is_load() && window.lq.len() >= self.cfg.load_queue {
            let oldest = window.lq.pop_front().expect("lq non-empty");
            if oldest > dispatch {
                dispatch = oldest;
                window_clamp = Some(StallClass::LsqFull);
            }
        }
        if instr.is_store() && window.sq.len() >= self.cfg.store_queue {
            let oldest = window.sq.pop_front().expect("sq non-empty");
            if oldest > dispatch {
                dispatch = oldest;
                window_clamp = Some(StallClass::LsqFull);
            }
        }
        // Decode-buffer backpressure: fetch cannot run arbitrarily far
        // ahead of a stalled dispatch stage.
        self.fetch_cycle = self
            .fetch_cycle
            .max(dispatch.saturating_sub(self.cfg.frontend_depth + DECODE_SLACK));

        // Register dependences. `dep_class` tracks the stall class of the
        // producer that gates readiness the longest.
        let ops = instr.operands();
        let mut ready = dispatch;
        let mut dep_class = StallClass::Base;
        for src in ops.src_iter() {
            let idx = src.flat_index();
            if self.reg_ready[idx] > ready {
                ready = self.reg_ready[idx];
                dep_class = self.reg_class[idx];
            }
        }

        // Issue on a functional unit.
        let (issue, fu_latency) = self.acquire_fu(class, ready, flush_at);

        // Wrong-path instructions that have not issued by the time the
        // mispredicted branch resolves are squashed before execution: they
        // never reach the cache (the timing simulator "discards the
        // unneeded instructions of the wrong path", §III-B).
        let squashed_before_issue = flush_at.is_some_and(|resolve| issue >= resolve);

        // Completion. `mem_level` records which level served a load (for
        // CPI attribution); `mem_extra` the latency beyond the FU.
        let mut mem_level = None;
        let mut mem_extra = 0;
        let complete = match class {
            ExecClass::Load => {
                let lat = match (load_timing, mem) {
                    _ if squashed_before_issue => 0,
                    (LoadTiming::Real, Some(m)) => {
                        let res = self.hierarchy.data_access(m.addr, false, issue, path);
                        mem_level = Some(res.served_by);
                        res.latency
                    }
                    // Address unknown (instruction reconstruction): model
                    // as an L1D hit without touching cache state.
                    _ => {
                        mem_level = Some(Level::L1);
                        self.cfg.l1d.latency
                    }
                };
                mem_extra = lat;
                issue + fu_latency + lat
            }
            ExecClass::Store => {
                // Stores leave the critical path through the store buffer;
                // the cache access happens for state/bandwidth purposes on
                // the correct path only (wrong-path stores are suppressed
                // before they would access the cache).
                if path == PathKind::Correct {
                    if let Some(m) = mem {
                        let _ = self.hierarchy.data_access(m.addr, true, issue, path);
                    }
                }
                issue + fu_latency
            }
            _ => issue + fu_latency,
        };

        // Backward critical-path culprit, in priority order: the
        // instruction's own below-L1 memory access, then the gating
        // producer's class (propagating memory-boundness down RAW chains),
        // then FU contention, a full window resource, an instruction-cache
        // miss, an L1-hit load, and finally base issue bandwidth.
        let culprit = if let Some(level) = mem_level.filter(|&l| l != Level::L1) {
            level_class(level)
        } else if ready > dispatch {
            dep_class
        } else if issue > ready {
            StallClass::Base
        } else if let Some(clamp) = window_clamp {
            clamp
        } else if fetch_level != Level::L1 {
            level_class(fetch_level)
        } else if mem_level.is_some() {
            StallClass::L1Bound
        } else {
            StallClass::Base
        };
        self.last_profile = (culprit, mem_extra);

        // Scoreboard update. The class scoreboard only tracks correct-path
        // writers: wrong-path `reg_ready` writes are rolled back via
        // `restore_regs`, and stale classes behind rolled-back ready times
        // are never consulted.
        if let Some(dst) = ops.dst {
            self.reg_ready[dst.flat_index()] = complete;
            if path == PathKind::Correct {
                self.reg_class[dst.flat_index()] = match culprit {
                    c if c.is_memory_bound() => c,
                    _ => StallClass::Base,
                };
            }
        }

        // Window occupancy bookkeeping. Wrong-path entries vacate at the
        // flush; correct-path ROB entries are pushed by `retire`.
        let vacate = flush_at.unwrap_or(complete);
        window.iq.push(Reverse(issue.min(vacate)));
        if instr.is_load() {
            window.lq.push_back(complete.min(vacate));
        }
        if instr.is_store() {
            window.sq.push_back(complete.min(vacate));
        }
        if let Some(flush) = flush_at {
            window.rob.push_back(flush);
            self.wrong_path_injected += 1;
        }

        InstrTimes {
            fetch,
            dispatch,
            issue,
            complete,
        }
    }

    /// Processes one correct-path instruction and retires it in order.
    /// Returns its timestamps; the retire cycle is folded into
    /// [`Pipeline::cycles`].
    pub fn feed_correct(&mut self, pc: Addr, instr: &Instr, mem: Option<MemAccess>) -> InstrTimes {
        let mut window = std::mem::take(&mut self.window);
        let prev_retire = self.last_retire;
        let t = self.feed(
            &mut window,
            pc,
            instr,
            mem,
            PathKind::Correct,
            LoadTiming::Real,
            None,
        );
        let retire = self.retire_in_order(t.complete);
        window.rob.push_back(retire);
        self.window = window;
        self.retired += 1;
        self.attribute_retire_gap(retire - prev_retire);
        t
    }

    /// Charges the cycles between consecutive retires to stall classes.
    /// Gaps telescope (`retire - prev_retire` summed over all retires is
    /// exactly the final retire cycle), so the stack's total always equals
    /// [`Pipeline::cycles`] relative to the last [`Pipeline::reset_cpi`].
    fn attribute_retire_gap(&mut self, gap: u64) {
        if gap > 0 {
            // The retire slot itself is useful bandwidth.
            self.cpi.add(StallClass::Base, false, 1);
            let stall = gap - 1;
            if stall > 0 {
                let (culprit, mem_extra) = self.last_profile;
                if self.redirect_pending {
                    // Misprediction-recovery gap: the retiring instruction's
                    // own memory latency keeps its class; fetch cycles the
                    // wrong path consumed go to the wrong-path lane; the
                    // rest is redirect + refill.
                    let mut rest = stall;
                    if culprit.is_memory_bound() {
                        let mem_part = rest.min(mem_extra);
                        self.cpi.add(culprit, false, mem_part);
                        rest -= mem_part;
                    }
                    let stolen = rest.min(self.wp_fetch_pending);
                    self.cpi.add(StallClass::WrongPathFetch, true, stolen);
                    rest -= stolen;
                    self.cpi.add(StallClass::FrontendMispredict, false, rest);
                } else {
                    self.cpi.add(culprit, false, stall);
                }
            }
        }
        self.redirect_pending = false;
        self.wp_fetch_pending = 0;
        self.last_wp_fetch_cycle = u64::MAX;
    }

    /// Starts a wrong-path injection episode: a scratch copy of the
    /// current window occupancy. Squashed instructions contend for window
    /// entries against the genuinely in-flight instructions, but their
    /// bookkeeping is discarded with this scratch state at the flush.
    #[must_use]
    pub fn begin_wrong_path(&mut self) -> WindowState {
        let mut scratch = self.wp_spare.take().unwrap_or_default();
        scratch.copy_from(&self.window);
        scratch
    }

    /// Ends a wrong-path injection episode, recycling the scratch window's
    /// allocations for the next one. Purely a host-speed device — dropping
    /// the scratch instead is equally correct, just slower.
    pub fn end_wrong_path(&mut self, scratch: WindowState) {
        self.wp_spare = Some(scratch);
    }

    /// Injects one wrong-path instruction that will be flushed when the
    /// mispredicted branch resolves at `resolve`, against the scratch
    /// window from [`Pipeline::begin_wrong_path`].
    pub fn feed_wrong(
        &mut self,
        window: &mut WindowState,
        pc: Addr,
        instr: &Instr,
        mem: Option<MemAccess>,
        load_timing: LoadTiming,
        resolve: u64,
    ) -> InstrTimes {
        self.feed(
            window,
            pc,
            instr,
            mem,
            PathKind::Wrong,
            load_timing,
            Some(resolve),
        )
    }

    fn retire_in_order(&mut self, complete: u64) -> u64 {
        // +1: results written back this cycle retire the next.
        let mut r = (complete + 1).max(self.last_retire);
        if r == self.last_retire {
            if self.retired_in_cycle >= self.cfg.retire_width {
                r += 1;
                self.retired_in_cycle = 1;
            } else {
                self.retired_in_cycle += 1;
            }
        } else {
            self.retired_in_cycle = 1;
        }
        self.last_retire = r;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsim_isa::{AluOp, MemWidth, Reg};

    fn pipeline() -> Pipeline {
        Pipeline::new(CoreConfig::tiny_for_tests())
    }

    fn alu(rd: u8, rs1: u8, rs2: u8) -> Instr {
        Instr::Alu {
            op: AluOp::Add,
            rd: Reg::new(rd),
            rs1: Reg::new(rs1),
            rs2: Reg::new(rs2),
        }
    }

    fn load(rd: u8, base: u8) -> Instr {
        Instr::Load {
            rd: Reg::new(rd),
            base: Reg::new(base),
            offset: 0,
            width: MemWidth::D,
            signed: false,
        }
    }

    fn mem(addr: Addr) -> Option<MemAccess> {
        Some(MemAccess {
            addr,
            size: 8,
            is_store: false,
        })
    }

    #[test]
    fn independent_alu_ops_pipeline_at_full_width() {
        let mut p = pipeline();
        // Cold pass: pays instruction-cache misses.
        for i in 0..60u64 {
            let _ = p.feed_correct(0x1000 + i * 4, &alu((i % 8 + 1) as u8, 9, 10), None);
        }
        let cold_cycles = p.cycles();
        // Warm pass over the same addresses: fetch-limited throughput.
        for i in 0..60u64 {
            let _ = p.feed_correct(0x1000 + i * 4, &alu((i % 8 + 1) as u8, 9, 10), None);
        }
        let warm_cycles = p.cycles() - cold_cycles;
        assert_eq!(p.retired(), 120);
        // 60 independent adds, 6-wide fetch, 8-wide retire, 5 ALUs:
        // the warm pass should take tens of cycles, not hundreds.
        assert!(warm_cycles < 40, "warm pass took {warm_cycles} cycles");
        assert!(cold_cycles > warm_cycles, "cold pass pays icache misses");
    }

    #[test]
    fn dependence_chain_serializes() {
        let mut p = pipeline();
        let mut pc = 0x1000;
        let mut last_complete = 0;
        for _ in 0..30 {
            // x1 = x1 + x1 — a pure chain.
            let t = p.feed_correct(pc, &alu(1, 1, 1), None);
            assert!(t.complete > last_complete);
            last_complete = t.complete;
            pc += 4;
        }
        // The chain is 30 cycles long at minimum.
        assert!(p.cycles() >= 30);
    }

    #[test]
    fn load_miss_latency_propagates_to_dependents() {
        let mut p = pipeline();
        let t_load = p.feed_correct(0x1000, &load(1, 2), mem(0x8_0000));
        // Dependent add cannot complete before the load.
        let t_add = p.feed_correct(0x1004, &alu(3, 1, 1), None);
        assert!(t_add.issue >= t_load.complete);
        // An independent add issues long before the load completes.
        let t_indep = p.feed_correct(0x1008, &alu(4, 5, 6), None);
        assert!(t_indep.issue < t_load.complete);
    }

    #[test]
    fn warm_load_is_fast() {
        let mut p = pipeline();
        let cold = p.feed_correct(0x1000, &load(1, 2), mem(0x8_0000));
        let warm = p.feed_correct(0x1004, &load(3, 2), mem(0x8_0000));
        assert!(
            warm.complete - warm.issue < cold.complete - cold.issue,
            "second access to the same line must be faster"
        );
    }

    #[test]
    fn assume_hit_skips_cache_state() {
        let mut p = pipeline();
        let mut w = p.begin_wrong_path();
        let t = p.feed_wrong(
            &mut w,
            0x1000,
            &load(1, 2),
            None,
            LoadTiming::AssumeL1Hit,
            1000,
        );
        // No data-cache access happened at all.
        assert_eq!(p.hierarchy().l1d().stats().accesses(), 0);
        // And latency is the fixed L1 latency.
        let cfg = CoreConfig::tiny_for_tests();
        assert_eq!(t.complete, t.issue + 1 + cfg.l1d.latency);
    }

    #[test]
    fn wrong_path_load_with_address_touches_cache() {
        let mut p = pipeline();
        let mut w = p.begin_wrong_path();
        let _ = p.feed_wrong(
            &mut w,
            0x1000,
            &load(1, 2),
            mem(0x9000),
            LoadTiming::Real,
            1000,
        );
        assert_eq!(p.hierarchy().l1d().stats().misses.get(PathKind::Wrong), 1);
        assert!(p.hierarchy().l1d().probe(0x9000));
        assert_eq!(p.wrong_path_injected(), 1);
        assert_eq!(p.retired(), 0, "wrong-path instructions never retire");
    }

    #[test]
    fn wrong_path_register_writes_are_flushable() {
        let mut p = pipeline();
        let snap = p.snapshot_regs();
        let mut w = p.begin_wrong_path();
        let _ = p.feed_wrong(
            &mut w,
            0x1000,
            &load(1, 2),
            mem(0x9000),
            LoadTiming::Real,
            1000,
        );
        p.restore_regs(snap);
        // A dependent correct-path consumer of x1 is not delayed by the
        // squashed wrong-path load.
        let t = p.feed_correct(0x1004, &alu(3, 1, 1), None);
        assert!(t.issue <= t.dispatch + 1);
    }

    #[test]
    fn rob_fill_stalls_dispatch() {
        let mut p = pipeline();
        // One very long load...
        let t0 = p.feed_correct(0x1000, &load(1, 2), mem(0x8_0000));
        // ...then a chain of dependent ALU ops long past the tiny 32-entry
        // ROB. Entries cannot dispatch until the blocked head retires.
        let mut pc = 0x1004;
        let mut times = Vec::new();
        for _ in 0..40 {
            times.push(p.feed_correct(pc, &alu(1, 1, 1), None));
            pc += 4;
        }
        // The 40th instruction dispatches after the load completed.
        assert!(times.last().unwrap().dispatch >= t0.complete);
    }

    #[test]
    fn redirect_halts_fetch_until_resume() {
        let mut p = pipeline();
        let _ = p.feed_correct(0x1000, &alu(1, 2, 3), None);
        p.redirect(500);
        let t = p.feed_correct(0x1004, &alu(4, 5, 6), None);
        assert!(t.fetch >= 500);
    }

    #[test]
    fn fetch_group_breaks_on_taken_branch() {
        let mut p = pipeline();
        let t1 = p.feed_correct(0x1000, &alu(1, 2, 3), None);
        p.break_fetch_group();
        let t2 = p.feed_correct(0x2000, &alu(4, 5, 6), None);
        assert!(t2.fetch > t1.fetch);
    }

    #[test]
    fn unpipelined_divider_blocks() {
        let mut p = pipeline();
        let div = Instr::Alu {
            op: AluOp::Div,
            rd: Reg::new(1),
            rs1: Reg::new(2),
            rs2: Reg::new(3),
        };
        let div2 = Instr::Alu {
            op: AluOp::Div,
            rd: Reg::new(4),
            rs1: Reg::new(5),
            rs2: Reg::new(6),
        };
        let t1 = p.feed_correct(0x1000, &div, None);
        let t2 = p.feed_correct(0x1004, &div2, None);
        // Independent divides still serialize on the single divider.
        assert!(t2.issue >= t1.issue + 18);
        let _ = (t1, t2);
    }

    #[test]
    fn retire_width_limits_throughput() {
        let mut cfg = CoreConfig::tiny_for_tests();
        cfg.retire_width = 1;
        let mut p = Pipeline::new(cfg);
        let mut pc = 0x1000;
        for i in 0..20 {
            let _ = p.feed_correct(pc, &alu((i % 8 + 1) as u8, 9, 10), None);
            pc += 4;
        }
        // 1-wide retire: at least 20 cycles.
        assert!(p.cycles() >= 20);
    }

    #[test]
    fn cpi_stack_sums_to_cycles() {
        use ffsim_obs::StallClass;
        let mut p = pipeline();
        // A mix of stall behaviors: icache misses, dependence chains,
        // DRAM-bound loads, ROB pressure, a wrong-path episode with a
        // redirect.
        for i in 0..50u64 {
            let _ = p.feed_correct(0x1000 + i * 4, &alu(1, 1, 1), None);
        }
        let _ = p.feed_correct(0x2000, &load(1, 2), mem(0x80_0000));
        let t_branch = p.feed_correct(0x2004, &alu(3, 1, 1), None);
        // The mispredicted branch resolves when it completes (as in the
        // simulator's run loop); wrong-path work fills the shadow.
        let resolve = t_branch.complete + 100;
        let snap = p.snapshot_regs();
        let mut w = p.begin_wrong_path();
        for i in 0..10u64 {
            let _ = p.feed_wrong(
                &mut w,
                0x9000 + i * 4,
                &load(4, 5),
                mem(0xA0_0000 + i * 64),
                LoadTiming::Real,
                resolve,
            );
        }
        p.restore_regs(snap);
        p.redirect(resolve + 5);
        for i in 0..20u64 {
            let _ = p.feed_correct(0x3000 + i * 4, &alu(2, 2, 2), None);
        }
        assert_eq!(
            p.cpi().total(),
            p.cycles(),
            "CPI components must sum exactly to elapsed cycles"
        );
        assert!(p.cpi().get(StallClass::FrontendMispredict) > 0);
        assert!(p.cpi().get_lane(StallClass::WrongPathFetch, true) > 0);
        assert!(p.cpi().get(StallClass::DramBound) > 0);
        // Reset re-anchors the telescoping at the current cycle.
        let before = p.cycles();
        p.reset_cpi();
        for i in 0..20u64 {
            let _ = p.feed_correct(0x4000 + i * 4, &alu(6, 6, 6), None);
        }
        assert_eq!(p.cpi().total(), p.cycles() - before);
    }

    #[test]
    fn dependence_on_dram_load_is_charged_to_dram() {
        use ffsim_obs::StallClass;
        let mut p = pipeline();
        let _ = p.feed_correct(0x1000, &load(1, 2), mem(0x80_0000));
        // A long chain of dependents on the missing load: their stall
        // cycles are memory-bound, not base.
        let _ = p.feed_correct(0x1004, &alu(3, 1, 1), None);
        assert!(
            p.cpi().get(StallClass::DramBound) > p.cpi().get(StallClass::Base),
            "dependents of a DRAM miss must charge DramBound, got {:?}",
            p.cpi()
        );
    }

    #[test]
    fn icache_miss_stalls_fetch() {
        let mut p = pipeline();
        let t1 = p.feed_correct(0x1000, &alu(1, 2, 3), None);
        // Same line: no extra stall.
        let t2 = p.feed_correct(0x1004, &alu(2, 3, 4), None);
        assert!(t2.fetch <= t1.fetch + 1);
        // Far line: cold instruction fetch stalls.
        let t3 = p.feed_correct(0x8000, &alu(3, 4, 5), None);
        assert!(t3.fetch > t2.fetch + 10);
    }
}
