//! The decoupled functional-first simulator: functional frontend, timing
//! backend, and the four wrong-path modeling techniques.

use crate::error::SimError;
use crate::metrics::{ObsReport, SimResult};
use crate::pipeline::Pipeline;
use crate::technique::mode::WrongPathMode;
use crate::technique::replica::PcCorruption;
use crate::technique::wrongpath::ConvergenceConfig;
use crate::technique::{MispredictContext, TechniqueRegistry, WrongPathTechnique};
use ffsim_emu::{CancelToken, DynInst, Emulator, FaultModel, FaultPolicy, FetchSource, Memory};
use ffsim_isa::Program;
use ffsim_obs::{
    EventRing, Log2Hist, ObsConfig, Phase, ProfHandle, TraceEvent, TraceEventKind, TraceSource,
};
use ffsim_uarch::{BranchPredictor, CoreConfig};
use std::time::Instant;

/// Builds a timing-model trace event (cycle timestamps).
fn timing_event(ts: u64, kind: TraceEventKind) -> TraceEvent {
    TraceEvent {
        ts,
        source: TraceSource::Timing,
        kind,
    }
}

/// Configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The simulated core (Table I parameters).
    pub core: CoreConfig,
    /// The wrong-path modeling technique.
    pub mode: WrongPathMode,
    /// Stop after this many *measured* correct-path instructions
    /// (`None` = run to `halt`).
    pub max_instructions: Option<u64>,
    /// How many entries the run loop pulls from the frontend per batched
    /// [`FetchSource::fill`] call. Any positive value produces the
    /// identical simulation (batching is a pure host-speed knob; the
    /// final batch is clamped to the remaining instruction budget);
    /// [`SimConfig::DEFAULT_HANDOFF_BATCH`] is chosen by the
    /// `handoff_batch` Criterion bench. Must be non-zero.
    pub handoff_batch: usize,
    /// Simulate this many instructions before measurement starts: caches,
    /// TLBs and predictors stay warm, but every statistic (including
    /// cycles and IPC) is reset at the boundary. This mirrors the paper's
    /// SimPoint-sample methodology of measuring a representative window.
    pub warmup_instructions: u64,
    /// Bound the code cache (`None` = unbounded, the paper's setup).
    pub code_cache_capacity: Option<usize>,
    /// Convergence-technique tunables (used in
    /// [`WrongPathMode::ConvergenceExploitation`] only).
    pub convergence: ConvergenceConfig,
    /// What to do when wrong-path emulation faults: squash and resume
    /// (default — mirrors hardware, where speculative faults are deferred
    /// and dropped on squash), or abort the whole run.
    pub fault_policy: FaultPolicy,
    /// Maximum speculative instructions per wrong-path emulation before the
    /// watchdog trips (`None` = unbounded). Defensive bound against wild
    /// speculative paths looping forever; must be non-zero.
    pub wrong_path_watchdog: Option<u64>,
    /// Which conditions the functional emulator treats as faults (address
    /// limits, divide-by-zero trapping). The default is permissive RISC-V
    /// semantics: no address limit, `x / 0 = -1`.
    pub fault_model: FaultModel,
    /// Bound on the sparse memory's materialized page count (`None` =
    /// unbounded). A correct-path store past the limit is a fatal
    /// [`Fault::OutOfRange`](ffsim_emu::Fault); must be non-zero.
    pub max_memory_pages: Option<usize>,
    /// Deterministic wrong-path start-pc corruption (fault injection,
    /// [`WrongPathMode::WrongPathEmulation`] only). `None` disables it.
    pub wp_pc_corruption: Option<PcCorruption>,
    /// Cooperative cancellation token shared with a supervisor (`None` =
    /// uncancellable). Checked once per retired instruction in
    /// [`Simulator::run`] and once per emulated instruction in the
    /// functional frontend; a fired token surfaces as
    /// [`SimError::Cancelled`] or [`SimError::DeadlineExceeded`].
    pub cancel: Option<CancelToken>,
    /// Observability: event tracing and wrong-path histograms. Defaults to
    /// the `FFSIM_OBS` environment opt-in (off unless set); disabled runs
    /// produce results bit-identical to an uninstrumented simulator.
    pub obs: ObsConfig,
}

impl SimConfig {
    /// Default wrong-path watchdog limit: far above any real speculative
    /// window (ROB + frontend), far below a hang.
    pub const DEFAULT_WATCHDOG: u64 = 65_536;

    /// Default frontend→timing handoff batch size. 64 sits on the flat
    /// part of the batch-size curve (see the `handoff` bench): large
    /// enough to amortize the per-batch seam crossing, small enough that
    /// the reusable buffer stays cache-resident.
    pub const DEFAULT_HANDOFF_BATCH: usize = 64;

    /// A run of `mode` on the default Golden Cove–like core.
    #[must_use]
    pub fn new(mode: WrongPathMode) -> SimConfig {
        SimConfig::with_core(CoreConfig::golden_cove_like(), mode)
    }

    /// A run of `mode` on a specific core configuration.
    #[must_use]
    pub fn with_core(core: CoreConfig, mode: WrongPathMode) -> SimConfig {
        SimConfig {
            core,
            mode,
            max_instructions: None,
            handoff_batch: SimConfig::DEFAULT_HANDOFF_BATCH,
            warmup_instructions: 0,
            code_cache_capacity: None,
            convergence: ConvergenceConfig::default(),
            fault_policy: FaultPolicy::default(),
            wrong_path_watchdog: Some(SimConfig::DEFAULT_WATCHDOG),
            fault_model: FaultModel::default(),
            max_memory_pages: None,
            wp_pc_corruption: None,
            cancel: None,
            obs: ObsConfig::from_env(),
        }
    }

    /// Checks the configuration for nonsense values; called by
    /// [`Simulator::new`].
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.core.queue_depth == 0 {
            return Err(SimError::InvalidConfig(
                "core.queue_depth must be non-zero".into(),
            ));
        }
        if self.handoff_batch == 0 {
            return Err(SimError::InvalidConfig(
                "handoff_batch must be non-zero".into(),
            ));
        }
        // Zero-sized window structures would make the dispatch-stage
        // "full window" checks (`len() >= size`) fire on empty queues and
        // panic inside the timing model; reject them up front.
        for (size, knob) in [
            (self.core.rob_size, "core.rob_size"),
            (self.core.iq_size, "core.iq_size"),
            (self.core.load_queue, "core.load_queue"),
            (self.core.store_queue, "core.store_queue"),
        ] {
            if size == 0 {
                return Err(SimError::InvalidConfig(format!("{knob} must be non-zero")));
            }
        }
        if self.code_cache_capacity == Some(0) {
            return Err(SimError::InvalidConfig(
                "code_cache_capacity must be non-zero (use None for unbounded)".into(),
            ));
        }
        if self.wrong_path_watchdog == Some(0) {
            return Err(SimError::InvalidConfig(
                "wrong_path_watchdog must be non-zero (use None for unbounded)".into(),
            ));
        }
        if self.max_memory_pages == Some(0) {
            return Err(SimError::InvalidConfig(
                "max_memory_pages must be non-zero (use None for unbounded)".into(),
            ));
        }
        if let Some(c) = self.wp_pc_corruption {
            if c.every_nth == 0 {
                return Err(SimError::InvalidConfig(
                    "wp_pc_corruption.every_nth must be non-zero".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Observes simulation events as they happen — per-retired-instruction
/// timings, mispredictions, and wrong-path injections. Implement this to
/// build custom analyses (per-region IPC, pipeline traces, event dumps)
/// without touching the simulator.
///
/// All methods have empty default bodies; override what you need.
pub trait SimObserver {
    /// A correct-path instruction retired with the given timestamps.
    fn on_instruction(&mut self, inst: &DynInst, times: crate::pipeline::InstrTimes) {
        let _ = (inst, times);
    }

    /// A branch mispredicted; it will resolve at `resolve_cycle`.
    fn on_mispredict(&mut self, pc: ffsim_isa::Addr, resolve_cycle: u64) {
        let _ = (pc, resolve_cycle);
    }
}

/// The do-nothing observer used by [`Simulator::run`].
#[derive(Clone, Copy, Default, Debug)]
pub struct NullObserver;

impl SimObserver for NullObserver {}

/// A complete decoupled functional-first simulation.
///
/// # Examples
///
/// ```
/// use ffsim_core::{SimConfig, Simulator, WrongPathMode};
/// use ffsim_emu::Memory;
/// use ffsim_isa::{Asm, Reg};
///
/// let mut a = Asm::new();
/// a.li(Reg::new(1), 100);
/// a.label("loop");
/// a.addi(Reg::new(1), Reg::new(1), -1);
/// a.bnez(Reg::new(1), "loop");
/// a.halt();
///
/// let cfg = SimConfig::new(WrongPathMode::ConvergenceExploitation);
/// let result = Simulator::new(a.assemble()?, Memory::new(), cfg)?.run()?;
/// assert_eq!(result.instructions, 202);
/// assert!(result.ipc() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulator {
    cfg: SimConfig,
    /// The wrong-path modeling strategy driving this run.
    technique: Box<dyn WrongPathTechnique>,
    frontend: Box<dyn FetchSource>,
    predictor: BranchPredictor,
    pipeline: Pipeline,
    /// Timing-model event ring (disabled unless `cfg.obs.enabled`).
    trace: EventRing,
    /// Host-phase profiler handle, shared with the frontend so emulator
    /// scopes nest under the run loop's (disabled unless
    /// `cfg.obs.profile`).
    prof: ProfHandle,
    /// Wrong-path instructions injected per misprediction episode.
    wp_episode_hist: Log2Hist,
    /// Timebase unification, SoA form: for each branch that triggered
    /// frontend wrong-path emulation, its instruction ordinal
    /// (`wp_seq[i]`, strictly increasing in retire order) and fetch cycle
    /// (`wp_fetch[i]`), so frontend trace events can be rebased onto the
    /// cycle axis with a binary search instead of a hash map. Only
    /// populated when tracing is enabled.
    wp_seq: Vec<u64>,
    wp_fetch: Vec<u64>,
}

impl Simulator {
    /// Builds a simulator for `program` with an initial `memory` image,
    /// selecting the built-in technique matching `cfg.mode`.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for nonsense configuration values and
    /// [`SimError::Emulator`] when the program's entry point is not
    /// executable.
    pub fn new(program: Program, memory: Memory, cfg: SimConfig) -> Result<Simulator, SimError> {
        let technique = TechniqueRegistry::builtin()
            .build_for_mode(cfg.mode, &cfg)
            .expect("builtin registry covers every WrongPathMode");
        Simulator::with_technique(program, memory, cfg, technique)
    }

    /// Builds a simulator driven by an explicit technique — the extension
    /// point for experimental strategies registered outside the built-in
    /// set ([`TechniqueRegistry::register`]). `cfg.mode` is only used for
    /// labeling the result; all behavior comes from `technique`.
    ///
    /// # Errors
    ///
    /// As for [`Simulator::new`].
    pub fn with_technique(
        program: Program,
        mut memory: Memory,
        cfg: SimConfig,
        technique: Box<dyn WrongPathTechnique>,
    ) -> Result<Simulator, SimError> {
        cfg.validate()?;
        if cfg.max_memory_pages.is_some() {
            memory.set_page_limit(cfg.max_memory_pages);
        }
        let mut emu = Emulator::with_memory(program, memory)?;
        emu.set_fault_model(cfg.fault_model);
        emu.set_cancel_token(cfg.cancel.clone());
        let mut frontend = technique.build_frontend(emu, &cfg);
        let predictor = BranchPredictor::new(cfg.core.branch);
        let pipeline = Pipeline::new(cfg.core.clone());
        let trace = cfg.obs.ring();
        let prof = cfg.obs.prof_handle();
        prof.set_hook_label(cfg.mode.label());
        frontend.install_profiler(prof.clone());
        Ok(Simulator {
            cfg,
            technique,
            frontend,
            predictor,
            pipeline,
            trace,
            prof,
            wp_episode_hist: Log2Hist::new(),
            wp_seq: Vec::new(),
            wp_fetch: Vec::new(),
        })
    }

    /// Runs the simulation to completion (program `halt` or the configured
    /// instruction limit) and returns the result.
    ///
    /// # Errors
    ///
    /// [`SimError::CorrectPathFault`] when a correct-path instruction
    /// faults (a workload bug), and [`SimError::WrongPathFault`] when a
    /// wrong-path fault ends the stream under
    /// [`FaultPolicy::AbortRun`](ffsim_emu::FaultPolicy::AbortRun). Under
    /// the default squash policy wrong-path faults are absorbed and only
    /// counted in [`SimResult::faults`].
    ///
    /// With a [`CancelToken`] configured, a fired token surfaces as
    /// [`SimError::Cancelled`] or [`SimError::DeadlineExceeded`] within one
    /// retired instruction — the cooperative cancellation contract the
    /// campaign driver's watchdog relies on.
    pub fn run(self) -> Result<SimResult, SimError> {
        self.run_observed(&mut NullObserver)
    }

    /// Runs the simulation, reporting events to `observer`.
    ///
    /// # Errors
    ///
    /// As for [`Simulator::run`].
    pub fn run_observed(mut self, observer: &mut dyn SimObserver) -> Result<SimResult, SimError> {
        let started = Instant::now();
        self.prof.start();
        // The timing pipeline is the run loop's *self time*: one scope
        // spans the whole loop, and the fetch / technique-hook / emulator
        // scopes nest inside it, so per-iteration bookkeeping between the
        // child scopes is attributed (to the pipeline) rather than lost —
        // that glue is what would otherwise break the telescoping floor.
        self.prof.enter(Phase::TimingPipeline);
        let warmup = self.cfg.warmup_instructions;
        let cancel = self.cfg.cancel.clone();
        let mut instructions: u64 = 0;
        // Measurement baselines, captured at the warmup boundary.
        let mut cycles_base: u64 = 0;
        let mut wp_base: u64 = 0;
        let mut warmed = warmup == 0;
        // The hot loop consumes the frontend in batched runs: one
        // `fill` call delivers up to `handoff_batch` entries into this
        // reusable buffer, and the per-entry processing below works on
        // plain slice indices. The final batch is clamped to the
        // remaining instruction budget, so the frontend produces exactly
        // as many entries as `handoff_batch = 1` would — batching can
        // never change the simulated stream or the final state digest.
        let batch_cap = self.cfg.handoff_batch;
        let mut batch = ffsim_emu::StreamBuf::with_capacity(batch_cap);

        'run: loop {
            let headroom = match self.cfg.max_instructions {
                Some(max) => (warmup + max).saturating_sub(instructions),
                None => u64::MAX,
            };
            if headroom == 0 {
                break;
            }
            let want = usize::try_from(headroom).map_or(batch_cap, |h| batch_cap.min(h));
            batch.clear();
            self.prof.enter(Phase::FrontendFetch);
            let filled = self.frontend.fill(&mut batch, want);
            self.prof.exit();
            if filled == 0 {
                break;
            }
            for idx in 0..filled {
                // Cancellation point: one relaxed load per retired
                // instruction.
                if let Some(cause) = cancel.as_ref().and_then(CancelToken::cause) {
                    return Err(cause.into());
                }
                if !warmed && instructions >= warmup {
                    warmed = true;
                    cycles_base = self.pipeline.cycles();
                    wp_base = self.pipeline.wrong_path_injected();
                    self.pipeline.reset_hierarchy_stats();
                    // The CPI stack re-anchors at the boundary so its
                    // components sum to the measured sample's cycles.
                    self.pipeline.reset_cpi();
                    self.predictor.reset_stats();
                    self.technique.reset_stats();
                    self.wp_episode_hist = Log2Hist::new();
                }
                let entries = batch.entries();
                let entry = &entries[idx];
                // The unconsumed tail of this batch: already-delivered
                // future correct-path entries a technique may peek before
                // falling through to the frontend's own runahead buffer.
                let lookahead = &entries[idx + 1..];
                let inst = entry.inst;
                self.prof.enter(Phase::TechniqueHook);
                self.technique.on_instruction(&inst);
                self.prof.exit();
                let times = self.pipeline.feed_correct(inst.pc, &inst.instr, inst.mem);
                if self.trace.is_enabled() && entry.wrong_path.is_some() {
                    // The frontend stamped this branch's emulation episode
                    // with its instruction ordinal; remember the branch's
                    // fetch cycle (ordinals arrive strictly increasing, so
                    // the rebase below can binary-search) so the episode
                    // can be rebased onto the cycle axis.
                    self.wp_seq.push(inst.seq);
                    self.wp_fetch.push(times.fetch);
                }
                instructions += 1;
                observer.on_instruction(&inst, times);

                let Some(outcome) = inst.branch else {
                    continue;
                };
                let res =
                    self.predictor
                        .observe(inst.pc, &inst.instr, outcome.taken, outcome.next_pc);
                if !res.mispredicted {
                    if outcome.taken {
                        self.pipeline.break_fetch_group();
                    }
                    continue;
                }

                // Misprediction: the branch resolves when it executes.
                let resolve = times.complete;
                observer.on_mispredict(inst.pc, resolve);
                let branch_pc = inst.pc;
                self.trace.record(|| {
                    timing_event(
                        times.fetch,
                        TraceEventKind::MispredictDetect { pc: branch_pc },
                    )
                });
                if res.prediction.taken {
                    // Fetch had redirected to the (wrongly) predicted target.
                    self.pipeline.break_fetch_group();
                }

                let wp_before = self.pipeline.wrong_path_injected();
                self.prof.enter(Phase::TechniqueHook);
                let mut cx = MispredictContext {
                    entry,
                    resolve,
                    wrong_path_start: res.wrong_path_start,
                    lookahead,
                    peek_cap: self.cfg.core.queue_depth,
                    predictor: &self.predictor,
                    pipeline: &mut self.pipeline,
                    frontend: &mut *self.frontend,
                    trace: &mut self.trace,
                };
                self.technique.on_mispredict(&mut cx);
                self.prof.exit();

                if self.trace.is_enabled() {
                    let injected = self.pipeline.wrong_path_injected() - wp_before;
                    self.wp_episode_hist.record(injected);
                    if injected > 0 {
                        // The wrong-path episode spans branch fetch to
                        // resolution, rendered as a B/E duration pair.
                        let start = res.wrong_path_start.unwrap_or(branch_pc);
                        self.trace.record(|| {
                            timing_event(times.fetch, TraceEventKind::WrongPathEnter { pc: start })
                        });
                        self.trace.record(|| {
                            timing_event(
                                resolve,
                                TraceEventKind::WrongPathExit {
                                    instructions: injected,
                                },
                            )
                        });
                    }
                    self.trace.record(|| {
                        timing_event(
                            resolve,
                            TraceEventKind::Squash {
                                instructions: injected,
                            },
                        )
                    });
                    self.trace.record(|| {
                        timing_event(resolve, TraceEventKind::MispredictResolve { pc: branch_pc })
                    });
                }
                self.technique.on_resolve(resolve);
                let resume = resolve + self.cfg.core.redirect_penalty;
                self.trace.record(|| {
                    timing_event(
                        resume,
                        TraceEventKind::FetchRedirect {
                            resume_cycle: resume,
                        },
                    )
                });
                self.pipeline.redirect(resume);
            }
            if self.cfg.max_instructions.is_none() && filled < want {
                // Unbounded run: a short batch means the stream ended.
                break 'run;
            }
        }

        if let Some(cause) = self.frontend.cancelled() {
            // The token fired inside the functional frontend (runahead or
            // wrong-path emulation) rather than between retirements.
            return Err(cause.into());
        }
        if let Some(fault) = self.frontend.fault() {
            return Err(if self.frontend.fault_was_wrong_path() {
                SimError::WrongPathFault(fault)
            } else {
                SimError::CorrectPathFault {
                    fault,
                    retired: instructions,
                }
            });
        }

        self.prof.exit();
        self.prof.finish();
        let obs = if self.cfg.obs.any() {
            // Timing-model events first, then frontend events — separate
            // tracks in the Chrome export. Frontend events are rebased from
            // the instruction ordinal of their triggering branch onto that
            // branch's fetch cycle, so both tracks share one time axis; an
            // episode whose branch never reached the timing model (e.g.
            // truncated by `max_instructions`) keeps its ordinal timestamp.
            // In profile-only mode the rings are disabled and the event
            // vector stays empty.
            let mut events = self.trace.take();
            let dropped_events = self.trace.dropped() + self.frontend.trace_dropped();
            let mut frontend_events = self.frontend.take_trace();
            for e in &mut frontend_events {
                if let Ok(i) = self.wp_seq.binary_search(&e.ts) {
                    e.ts = self.wp_fetch[i];
                }
            }
            events.extend(frontend_events);
            Some(ObsReport {
                events,
                dropped_events,
                wp_episode_len: self.wp_episode_hist,
                conv_distance: self.technique.conv_distance(),
                profile: self.prof.snapshot(),
            })
        } else {
            None
        };

        let technique_stats = self.technique.stats();
        let h = self.pipeline.hierarchy();
        Ok(SimResult {
            mode: self.cfg.mode,
            instructions: instructions.saturating_sub(warmup.min(instructions)),
            cycles: self.pipeline.cycles().saturating_sub(cycles_base),
            wrong_path_instructions: self.pipeline.wrong_path_injected().saturating_sub(wp_base),
            branch: self.predictor.stats(),
            convergence: technique_stats.convergence,
            code_cache: technique_stats.code_cache,
            block_cache: self.frontend.emulator().block_cache_stats(),
            l1i: h.l1i().stats(),
            l1d: h.l1d().stats(),
            l2: h.l2().stats(),
            llc: h.llc().stats(),
            dram: h.dram().stats(),
            itlb: h.itlb().stats(),
            dtlb: h.dtlb().stats(),
            wall_time: started.elapsed(),
            faults: self.frontend.fault_stats(),
            state_digest: self.frontend.emulator().digest(),
            cpi: self.pipeline.cpi(),
            obs,
        })
    }
}

/// Convenience: run one program under all four built-in wrong-path
/// techniques with the same core configuration, returning results in
/// [`WrongPathMode::ALL`] order (the [`TechniqueRegistry::builtin`]
/// registration order). The program and memory image are reused via
/// cloning, so all four runs see identical workloads.
///
/// The four runs are independent (each gets its own emulator, predictor
/// and pipeline), so they execute on separate threads; results are
/// collected in registration order, which keeps the output — and the
/// choice of which error is reported — deterministic regardless of which
/// thread finishes first.
///
/// # Errors
///
/// The first [`SimError`] (in registration order) any of the runs
/// produces.
pub fn run_all_modes(
    program: &Program,
    memory: &Memory,
    core: &CoreConfig,
    max_instructions: Option<u64>,
) -> Result<[SimResult; 4], SimError> {
    let registry = TechniqueRegistry::builtin();
    let results: Vec<Result<SimResult, SimError>> = std::thread::scope(|s| {
        let handles: Vec<_> = registry
            .entries()
            .map(|(label, mode)| {
                let registry = &registry;
                s.spawn(move || {
                    let mut cfg = SimConfig::with_core(core.clone(), mode);
                    cfg.max_instructions = max_instructions;
                    let technique = registry
                        .build(label, &cfg)
                        .expect("iterated entries are buildable");
                    Simulator::with_technique(program.clone(), memory.clone(), cfg, technique)?
                        .run()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });
    let mut out = Vec::with_capacity(results.len());
    for result in results {
        out.push(result?);
    }
    Ok(out.try_into().expect("exactly four built-in techniques"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsim_isa::{Asm, Reg};

    fn tiny(mode: WrongPathMode) -> SimConfig {
        SimConfig::with_core(CoreConfig::tiny_for_tests(), mode)
    }

    /// A loop with a data-dependent branch over zero-initialized memory:
    /// never taken, so after warmup the only mispredictions are cold ones.
    fn simple_loop(n: i64) -> Program {
        let (i, limit) = (Reg::new(1), Reg::new(2));
        let mut a = Asm::new();
        a.li(i, n);
        a.li(limit, 0);
        a.label("loop");
        a.addi(i, i, -1);
        a.bnez(i, "loop");
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn all_modes_agree_on_instruction_count() {
        let p = simple_loop(200);
        let results =
            run_all_modes(&p, &Memory::new(), &CoreConfig::tiny_for_tests(), None).unwrap();
        let counts: Vec<u64> = results.iter().map(|r| r.instructions).collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "functional behaviour must be identical across modes: {counts:?}"
        );
        assert_eq!(counts[0], 1 + 1 + 400 + 1);
        for r in &results {
            assert!(r.cycles > 0);
        }
        // Bit-identical final architectural state across all four modes.
        let digests: Vec<u64> = results.iter().map(|r| r.state_digest).collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "state digests must agree across modes: {digests:?}"
        );
    }

    #[test]
    fn nowp_never_injects_wrong_path() {
        let p = simple_loop(100);
        let r = Simulator::new(p, Memory::new(), tiny(WrongPathMode::NoWrongPath))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.wrong_path_instructions, 0);
        assert_eq!(r.l1d.misses.get(ffsim_uarch::PathKind::Wrong), 0);
        assert_eq!(r.l1i.misses.get(ffsim_uarch::PathKind::Wrong), 0);
    }

    #[test]
    fn wrong_path_modes_inject_on_loop_exit() {
        let p = simple_loop(100);
        for mode in [
            WrongPathMode::InstructionReconstruction,
            WrongPathMode::ConvergenceExploitation,
            WrongPathMode::WrongPathEmulation,
        ] {
            let r = Simulator::new(p.clone(), Memory::new(), tiny(mode))
                .unwrap()
                .run()
                .unwrap();
            assert!(
                r.wrong_path_instructions > 0,
                "{mode}: loop-exit misprediction must inject wrong path"
            );
        }
    }

    #[test]
    fn instrec_never_touches_data_cache_on_wrong_path() {
        let p = simple_loop(100);
        let r = Simulator::new(
            p,
            Memory::new(),
            tiny(WrongPathMode::InstructionReconstruction),
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(r.l1d.misses.get(ffsim_uarch::PathKind::Wrong), 0);
        assert_eq!(r.l1d.hits.get(ffsim_uarch::PathKind::Wrong), 0);
    }

    #[test]
    fn max_instructions_truncates() {
        let p = simple_loop(1000);
        let mut cfg = tiny(WrongPathMode::NoWrongPath);
        cfg.max_instructions = Some(50);
        let r = Simulator::new(p, Memory::new(), cfg)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.instructions, 50);
    }

    #[test]
    fn branch_stats_track_the_loop() {
        let p = simple_loop(100);
        let r = Simulator::new(p, Memory::new(), tiny(WrongPathMode::NoWrongPath))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.branch.cond_branches, 100);
        // The back edge trains quickly; the loop exit mispredicts.
        assert!(r.branch.cond_mispredicts >= 1);
        assert!(r.branch.cond_mispredicts <= 5);
    }

    /// A loop streaming over an array larger than the tiny L1D: cold runs
    /// pay compulsory misses, warmed-up samples mostly hit.
    fn streaming_loop(elems: i64) -> Program {
        let (i, n, base, v) = (Reg::new(1), Reg::new(2), Reg::new(5), Reg::new(6));
        let mut a = Asm::new();
        a.li(base, 0x1000_0000);
        a.li(i, 0);
        a.li(n, elems);
        a.label("outer");
        a.slli(v, i, 3);
        a.add(v, v, base);
        a.ld(v, 0, v);
        a.addi(i, i, 1);
        a.blt(i, n, "outer");
        // Second pass over the same data.
        a.li(i, 0);
        a.label("second");
        a.slli(v, i, 3);
        a.add(v, v, base);
        a.ld(v, 0, v);
        a.addi(i, i, 1);
        a.blt(i, n, "second");
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn warmup_excludes_cold_start_from_measurement() {
        // 100 elements x 8 B = 800 B fits the tiny 1 KiB L1D.
        let p = streaming_loop(100);
        // Cold: measure everything.
        let cold = Simulator::new(p.clone(), Memory::new(), {
            let mut c = tiny(WrongPathMode::NoWrongPath);
            c.max_instructions = Some(500);
            c
        })
        .unwrap()
        .run()
        .unwrap();
        // Warm: skip the first pass (5 instrs/elem + 3 setup), measure after.
        let warm = Simulator::new(p, Memory::new(), {
            let mut c = tiny(WrongPathMode::NoWrongPath);
            c.warmup_instructions = 503;
            c.max_instructions = Some(500);
            c
        })
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(cold.instructions, 500);
        assert_eq!(warm.instructions, 500);
        assert!(
            warm.cycles < cold.cycles,
            "warmed sample ({}) must be faster than cold ({})",
            warm.cycles,
            cold.cycles
        );
        let miss = |r: &SimResult| r.l1d.misses.get(ffsim_uarch::PathKind::Correct);
        assert!(miss(&warm) < miss(&cold) / 2, "warm caches barely miss");
        assert!(warm.ipc() > cold.ipc());
    }

    #[test]
    fn warmup_longer_than_program_yields_empty_sample() {
        let p = simple_loop(10);
        let mut cfg = tiny(WrongPathMode::NoWrongPath);
        cfg.warmup_instructions = 1_000_000;
        let r = Simulator::new(p, Memory::new(), cfg)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.instructions, 0, "no measured instructions");
    }

    #[test]
    fn observer_sees_every_retired_instruction_and_mispredict() {
        struct Counter {
            instructions: u64,
            mispredicts: u64,
            last_complete: u64,
            ordered: bool,
        }
        impl SimObserver for Counter {
            fn on_instruction(
                &mut self,
                _inst: &ffsim_emu::DynInst,
                t: crate::pipeline::InstrTimes,
            ) {
                self.instructions += 1;
                self.ordered &= t.fetch <= t.dispatch && t.dispatch <= t.issue;
                self.last_complete = self.last_complete.max(t.complete);
            }
            fn on_mispredict(&mut self, _pc: ffsim_isa::Addr, resolve: u64) {
                self.mispredicts += 1;
                assert!(resolve > 0);
            }
        }
        let p = simple_loop(50);
        let mut obs = Counter {
            instructions: 0,
            mispredicts: 0,
            last_complete: 0,
            ordered: true,
        };
        let r = Simulator::new(
            p,
            Memory::new(),
            tiny(WrongPathMode::ConvergenceExploitation),
        )
        .unwrap()
        .run_observed(&mut obs)
        .unwrap();
        assert_eq!(obs.instructions, r.instructions);
        assert_eq!(obs.mispredicts, r.branch.mispredicts());
        assert!(obs.ordered, "stage timestamps must be ordered");
        assert!(obs.last_complete <= r.cycles);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let p = simple_loop(5);
        let mut cfg = tiny(WrongPathMode::NoWrongPath);
        cfg.wrong_path_watchdog = Some(0);
        assert!(matches!(
            Simulator::new(p.clone(), Memory::new(), cfg),
            Err(SimError::InvalidConfig(_))
        ));
        let mut cfg = tiny(WrongPathMode::NoWrongPath);
        cfg.max_memory_pages = Some(0);
        assert!(Simulator::new(p.clone(), Memory::new(), cfg).is_err());
        let mut cfg = tiny(WrongPathMode::WrongPathEmulation);
        cfg.wp_pc_corruption = Some(PcCorruption {
            every_nth: 0,
            xor_mask: 1,
        });
        assert!(Simulator::new(p, Memory::new(), cfg).is_err());
    }

    #[test]
    fn zero_sized_windows_are_rejected_not_panicking() {
        // A zero-sized window structure or code cache would previously
        // panic deep inside the timing model; validation must surface a
        // typed error instead.
        let p = simple_loop(5);
        for tweak in [
            (|cfg: &mut SimConfig| cfg.core.rob_size = 0) as fn(&mut SimConfig),
            |cfg| cfg.core.iq_size = 0,
            |cfg| cfg.core.load_queue = 0,
            |cfg| cfg.core.store_queue = 0,
            |cfg| cfg.code_cache_capacity = Some(0),
        ] {
            let mut cfg = tiny(WrongPathMode::NoWrongPath);
            tweak(&mut cfg);
            assert!(matches!(
                Simulator::new(p.clone(), Memory::new(), cfg),
                Err(SimError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn cancel_token_surfaces_as_typed_error() {
        // A pre-fired token stops the run before the first retirement.
        let token = CancelToken::new();
        token.cancel();
        let mut cfg = tiny(WrongPathMode::NoWrongPath);
        cfg.cancel = Some(token);
        let err = Simulator::new(simple_loop(100), Memory::new(), cfg)
            .unwrap()
            .run()
            .unwrap_err();
        assert_eq!(err, SimError::Cancelled);

        // An expired deadline maps to DeadlineExceeded.
        let token = CancelToken::new();
        token.expire();
        let mut cfg = tiny(WrongPathMode::WrongPathEmulation);
        cfg.cancel = Some(token);
        let err = Simulator::new(simple_loop(100), Memory::new(), cfg)
            .unwrap()
            .run()
            .unwrap_err();
        assert_eq!(err, SimError::DeadlineExceeded);
    }

    #[test]
    fn cancellation_from_another_thread_stops_a_long_run() {
        // An effectively-unbounded loop; the watcher thread fires the
        // token and the run must come back with the typed error rather
        // than spinning forever.
        let token = CancelToken::new();
        let watcher = token.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            watcher.expire();
        });
        let mut cfg = tiny(WrongPathMode::ConvergenceExploitation);
        cfg.cancel = Some(token);
        let err = Simulator::new(simple_loop(2_000_000_000), Memory::new(), cfg)
            .unwrap()
            .run()
            .unwrap_err();
        assert_eq!(err, SimError::DeadlineExceeded);
        handle.join().unwrap();
    }

    #[test]
    fn correct_path_fault_is_a_typed_error() {
        // Two stores to far-apart pages under a one-page memory limit: the
        // second materialization faults on the correct path.
        let a1 = Reg::new(1);
        let a2 = Reg::new(2);
        let mut a = Asm::new();
        a.li(a1, 0x1000_0000);
        a.li(a2, 0x2000_0000);
        a.sd(a1, 0, a1);
        a.sd(a2, 0, a2);
        a.halt();
        let p = a.assemble().unwrap();
        let mut cfg = tiny(WrongPathMode::NoWrongPath);
        cfg.max_memory_pages = Some(1);
        let err = Simulator::new(p, Memory::new(), cfg)
            .unwrap()
            .run()
            .unwrap_err();
        match err {
            SimError::CorrectPathFault { fault, retired } => {
                assert!(matches!(fault, ffsim_emu::Fault::OutOfRange { .. }));
                assert_eq!(retired, 3, "li, li, sd retire before the faulting sd");
            }
            other => panic!("expected a correct-path fault, got {other}"),
        }
    }

    #[test]
    fn cpi_components_sum_to_cycles_in_every_mode() {
        let p = streaming_loop(100);
        for mode in WrongPathMode::ALL {
            let r = Simulator::new(p.clone(), Memory::new(), tiny(mode))
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(
                r.cpi.total(),
                r.cycles,
                "{mode}: CPI stack must sum exactly to cycles"
            );
            assert!(r.cpi.get(ffsim_obs::StallClass::Base) > 0, "{mode}");
        }
    }

    #[test]
    fn cpi_components_sum_to_cycles_with_warmup() {
        let p = streaming_loop(100);
        for mode in WrongPathMode::ALL {
            let mut cfg = tiny(mode);
            cfg.warmup_instructions = 300;
            cfg.max_instructions = Some(400);
            let r = Simulator::new(p.clone(), Memory::new(), cfg)
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(
                r.cpi.total(),
                r.cycles,
                "{mode}: warmup reset must re-anchor the CPI stack"
            );
        }
    }

    #[test]
    fn wrong_path_fetch_cycles_appear_only_in_injecting_modes() {
        use ffsim_obs::StallClass;
        let p = simple_loop(200);
        let nowp = Simulator::new(p.clone(), Memory::new(), tiny(WrongPathMode::NoWrongPath))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            nowp.cpi.get(StallClass::WrongPathFetch),
            0,
            "no wrong path, no stolen fetch cycles"
        );
        assert_eq!(nowp.cpi.total_wrong(), 0);
        let wpemul = Simulator::new(p, Memory::new(), tiny(WrongPathMode::WrongPathEmulation))
            .unwrap()
            .run()
            .unwrap();
        assert!(
            wpemul.cpi.get_lane(StallClass::WrongPathFetch, true) > 0,
            "wrong-path emulation must charge stolen fetch cycles: {:?}",
            wpemul.cpi
        );
    }

    #[test]
    fn obs_run_collects_trace_and_histograms() {
        let p = simple_loop(100);
        let mut cfg = tiny(WrongPathMode::ConvergenceExploitation);
        cfg.obs = ObsConfig::enabled();
        let r = Simulator::new(p, Memory::new(), cfg)
            .unwrap()
            .run()
            .unwrap();
        let obs = r.obs.expect("enabled run must carry an ObsReport");
        assert!(!obs.events.is_empty(), "mispredictions must leave events");
        assert_eq!(
            obs.wp_episode_len.count(),
            r.branch.mispredicts(),
            "one episode sample per misprediction"
        );
        assert!(
            obs.events
                .iter()
                .any(|e| matches!(e.kind, TraceEventKind::MispredictResolve { .. })),
            "resolve events present"
        );
        // Disabled runs carry no report.
        let p2 = simple_loop(100);
        let r2 = Simulator::new(
            p2,
            Memory::new(),
            tiny(WrongPathMode::ConvergenceExploitation),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(r2.obs.is_none());
    }

    #[test]
    fn frontend_trace_events_share_the_cycle_timebase() {
        // Timebase unification: frontend wrong-path emulation events must
        // land on the fetch cycle of their triggering branch — the same
        // cycle the timing model stamps on its MispredictDetect event.
        let p = simple_loop(100);
        let mut cfg = tiny(WrongPathMode::WrongPathEmulation);
        cfg.obs = ObsConfig::enabled();
        let r = Simulator::new(p, Memory::new(), cfg)
            .unwrap()
            .run()
            .unwrap();
        let obs = r.obs.expect("enabled run must carry an ObsReport");
        let detect_cycles: std::collections::HashSet<u64> = obs
            .events
            .iter()
            .filter(|e| {
                e.source == TraceSource::Timing
                    && matches!(e.kind, TraceEventKind::MispredictDetect { .. })
            })
            .map(|e| e.ts)
            .collect();
        let frontend: Vec<&TraceEvent> = obs
            .events
            .iter()
            .filter(|e| e.source == TraceSource::Frontend)
            .collect();
        assert!(
            !frontend.is_empty(),
            "wpemul episodes must leave frontend events"
        );
        for e in &frontend {
            assert!(
                detect_cycles.contains(&e.ts),
                "frontend event at ts {} not on a branch fetch cycle {detect_cycles:?}",
                e.ts
            );
        }
    }

    #[test]
    fn observability_has_no_observer_effect() {
        // The hard invariant: tracing on vs. off yields identical timing
        // and architectural results in every mode.
        let p = streaming_loop(60);
        for mode in WrongPathMode::ALL {
            let run = |enabled: bool| {
                let mut cfg = tiny(mode);
                cfg.obs = if enabled {
                    ObsConfig::enabled()
                } else {
                    ObsConfig::disabled()
                };
                let r = Simulator::new(p.clone(), Memory::new(), cfg)
                    .unwrap()
                    .run()
                    .unwrap();
                (
                    r.cycles,
                    r.instructions,
                    r.wrong_path_instructions,
                    r.state_digest,
                )
            };
            assert_eq!(run(false), run(true), "{mode}: observer effect detected");
        }
    }

    #[test]
    fn ipc_is_plausible() {
        let p = simple_loop(500);
        let r = Simulator::new(p, Memory::new(), tiny(WrongPathMode::NoWrongPath))
            .unwrap()
            .run()
            .unwrap();
        // The loop body is a 1-cycle dependence chain (addi) plus a branch:
        // IPC must be positive and below the 6-wide frontend bound.
        let ipc = r.ipc();
        assert!(ipc > 0.1, "ipc {ipc}");
        assert!(ipc <= 6.0, "ipc {ipc}");
    }
}
