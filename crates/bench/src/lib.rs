//! # ffsim-bench — experiment harness
//!
//! Regenerates every table and figure of *“Simulating Wrong-Path
//! Instructions in Decoupled Functional-First Simulation”* (Eyerman et
//! al., ISPASS 2023) on this repository's from-scratch simulator stack.
//! One binary per experiment:
//!
//! | target | paper artifact |
//! |---|---|
//! | `table1_config` | Table I — simulated core configuration |
//! | `fig1_nowp_error` | Fig. 1 — error of no-wrong-path modeling, GAP |
//! | `fig4_gap_techniques` | Fig. 4 (left) — error per technique, GAP |
//! | `fig4_spec_distribution` | Fig. 4 (right) — error distribution, SPEC-like |
//! | `table2_wp_fraction` | Table II — wrong-path instructions executed |
//! | `table3_convergence` | Table III — convergence-technique metrics |
//! | `speed_comparison` | §V-B — simulation-speed slowdowns |
//! | `ablations` | design-choice studies (not in the paper) |
//! | `fault_injection` | robustness — wrong-path fault injection (not in the paper) |
//!
//! The library half holds the shared experiment setup: canonical workload
//! scales, per-mode runners, and plain-text table/histogram formatting.

#![warn(missing_docs)]

use ffsim_core::{SimConfig, SimResult, Simulator, TechniqueRegistry, WrongPathMode};
use ffsim_driver::{Campaign, CampaignConfig, Job, JobRecord, RetryPolicy, WorkloadFn};
use ffsim_uarch::CoreConfig;
use ffsim_workloads::speclike::{all_speclike, SpecKernel};
use ffsim_workloads::{gap, Workload};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// log2 of the GAP graph vertex count used by the experiments.
pub const GAP_SCALE: u32 = 14;
/// Average degree of the GAP graphs.
pub const GAP_DEGREE: usize = 16;
/// RNG seed for graph generation (all experiments are deterministic).
pub const GAP_SEED: u64 = 42;
/// Correct-path instruction budget per GAP simulation.
pub const GAP_MAX_INSTRUCTIONS: u64 = 3_000_000;
/// Correct-path instruction budget per SPEC-like simulation.
pub const SPEC_MAX_INSTRUCTIONS: u64 = 1_500_000;
/// Seed for the SPEC-like suite.
pub const SPEC_SEED: u64 = 2026;

/// The GAP suite at experiment scale (bc, bfs, cc, pr, sssp, tc).
#[must_use]
pub fn gap_suite() -> Vec<Workload> {
    gap::all_gap(GAP_SCALE, GAP_DEGREE, GAP_SEED)
}

/// The SPEC-like suite at experiment scale.
#[must_use]
pub fn spec_suite() -> Vec<SpecKernel> {
    all_speclike(1, SPEC_SEED)
}

/// Parses a `--techniques label[,label...]` specification against the
/// labels in [`TechniqueRegistry::builtin`]. The result is deduplicated
/// and normalized to registry order, so experiment output does not depend
/// on the order labels were typed in.
///
/// # Errors
///
/// An unknown label (the message lists the registered ones) or an empty
/// specification.
pub fn parse_techniques(spec: &str) -> Result<Vec<WrongPathMode>, String> {
    let registry = TechniqueRegistry::builtin();
    let mut selected: Vec<WrongPathMode> = Vec::new();
    for label in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let Some((_, mode)) = registry.entries().find(|(l, _)| *l == label) else {
            let known: Vec<&str> = registry.entries().map(|(l, _)| l).collect();
            return Err(format!(
                "unknown technique `{label}` (registered: {})",
                known.join(", ")
            ));
        };
        if !selected.contains(&mode) {
            selected.push(mode);
        }
    }
    if selected.is_empty() {
        return Err("--techniques needs at least one technique label".into());
    }
    Ok(registry
        .entries()
        .map(|(_, m)| m)
        .filter(|m| selected.contains(m))
        .collect())
}

/// Parses an experiment binary's command line, supporting the shared
/// `--techniques <label,...>` filter. No filter means every registered
/// technique, so default output is unchanged.
///
/// # Errors
///
/// Unknown flags, a missing value, or any error from
/// [`parse_techniques`].
pub fn techniques_from_args() -> Result<Vec<WrongPathMode>, String> {
    let mut modes: Option<Vec<WrongPathMode>> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--techniques" => {
                let spec = argv.next().ok_or("--techniques needs a value")?;
                modes = Some(parse_techniques(&spec)?);
            }
            other => {
                return Err(format!(
                    "unknown argument: {other} (supported: --techniques <label,...>)"
                ))
            }
        }
    }
    Ok(modes.unwrap_or_else(|| WrongPathMode::ALL.to_vec()))
}

/// Runs one workload under a specific mode.
///
/// # Panics
///
/// The experiment workloads are canonical and fault-free; any
/// [`SimError`](ffsim_core::SimError) here is a harness bug and panics
/// with the typed error's message.
#[must_use]
pub fn run_mode(
    workload: &Workload,
    core: &CoreConfig,
    mode: WrongPathMode,
    max_instructions: u64,
) -> SimResult {
    let mut cfg = SimConfig::with_core(core.clone(), mode);
    cfg.max_instructions = Some(max_instructions);
    Simulator::new(workload.program().clone(), workload.memory().clone(), cfg)
        .and_then(Simulator::run)
        .unwrap_or_else(|e| panic!("experiment workload failed under {mode}: {e}"))
}

/// Runs one workload under all four modes (paper order).
#[must_use]
pub fn run_modes(workload: &Workload, core: &CoreConfig, max_instructions: u64) -> [SimResult; 4] {
    WrongPathMode::ALL.map(|mode| run_mode(workload, core, mode, max_instructions))
}

/// A [`WorkloadFn`] serving clones of an already-built program and memory
/// image. Harness workloads are generated once (graph construction is the
/// expensive part) and cloned per attempt.
#[must_use]
pub fn owned_workload(program: ffsim_isa::Program, memory: ffsim_emu::Memory) -> WorkloadFn {
    Arc::new(move || Ok((program.clone(), memory.clone())))
}

/// A [`WorkloadFn`] for a harness [`Workload`].
#[must_use]
pub fn workload_fn(workload: &Workload) -> WorkloadFn {
    owned_workload(workload.program().clone(), workload.memory().clone())
}

/// Runs a set of named jobs through the supervised campaign driver and
/// returns their records keyed by job id.
///
/// Harness semantics differ from production campaigns: the workloads are
/// deterministic, so attempts are not retried (a retry would fail
/// identically) and the degradation ladder is disabled per job by the
/// caller where failure must surface. Jobs run in parallel across the
/// worker pool with panic isolation and a per-job watchdog deadline, so
/// one faulting experiment cannot take down or hang the whole binary.
///
/// # Panics
///
/// Panics on campaign-level errors (duplicate ids). Individual job
/// failures are returned in the records; use [`expect_sim`] for jobs that
/// must have succeeded.
#[must_use]
pub fn run_supervised(jobs: Vec<Job>) -> BTreeMap<String, JobRecord> {
    let campaign = Campaign::new(CampaignConfig {
        workers: 0,
        retry: RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        },
        default_timeout: Some(Duration::from_secs(600)),
        manifest_path: None,
        ..CampaignConfig::default()
    });
    campaign
        .run(jobs)
        .unwrap_or_else(|e| panic!("experiment campaign failed: {e}"))
        .records
}

/// The full result of a job that must have succeeded.
///
/// # Panics
///
/// Panics with the job's recorded attempt history when it is missing or
/// did not complete — any failure of a canonical experiment workload is a
/// harness bug.
#[must_use]
pub fn expect_sim<'a>(records: &'a BTreeMap<String, JobRecord>, id: &str) -> &'a SimResult {
    let record = records
        .get(id)
        .unwrap_or_else(|| panic!("experiment job {id} has no record"));
    record
        .sim
        .as_ref()
        .unwrap_or_else(|| panic!("experiment job {id} failed: {:?}", record.attempts))
}

/// Renders a plain-text table with aligned columns.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (c, cell) in cells.iter().enumerate() {
            if c > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>w$}", w = widths[c]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a text histogram (one row per bucket) for error distributions,
/// in the spirit of the paper's Fig. 4 (right).
#[must_use]
pub fn render_histogram(values: &[(String, f64)], bucket_edges: &[f64]) -> String {
    let mut out = String::new();
    for window in bucket_edges.windows(2) {
        let (lo, hi) = (window[0], window[1]);
        let members: Vec<&str> = values
            .iter()
            .filter(|(_, v)| *v >= lo && *v < hi)
            .map(|(n, _)| n.as_str())
            .collect();
        out.push_str(&format!(
            "[{lo:+6.1}%, {hi:+6.1}%) {:3} {} {}\n",
            members.len(),
            "#".repeat(members.len()),
            members.join(" ")
        ));
    }
    out
}

/// Arithmetic mean (0 for an empty slice).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Mean of absolute values (the paper reports average |error|).
#[must_use]
pub fn mean_abs(values: &[f64]) -> f64 {
    mean(&values.iter().map(|v| v.abs()).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("2.5"));
    }

    #[test]
    fn histogram_buckets() {
        let h = render_histogram(
            &[("a".into(), -5.0), ("b".into(), 0.1), ("c".into(), 0.2)],
            &[-10.0, -1.0, 1.0, 10.0],
        );
        assert!(h.contains("a"));
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("##"));
    }

    #[test]
    fn technique_filter_accepts_registered_labels() {
        assert_eq!(
            parse_techniques("nowp,wpemul").unwrap(),
            vec![
                WrongPathMode::NoWrongPath,
                WrongPathMode::WrongPathEmulation
            ]
        );
    }

    #[test]
    fn technique_filter_normalizes_order_and_dedupes() {
        assert_eq!(
            parse_techniques("wpemul, conv ,conv,instrec").unwrap(),
            vec![
                WrongPathMode::InstructionReconstruction,
                WrongPathMode::ConvergenceExploitation,
                WrongPathMode::WrongPathEmulation
            ]
        );
    }

    #[test]
    fn technique_filter_rejects_unknown_labels_listing_the_registry() {
        let err = parse_techniques("nowp,typo").unwrap_err();
        assert!(err.contains("unknown technique `typo`"), "{err}");
        for label in ["nowp", "instrec", "conv", "wpemul"] {
            assert!(err.contains(label), "{err} should list {label}");
        }
        assert!(parse_techniques("").is_err(), "empty spec is an error");
        assert!(parse_techniques(" , ").is_err(), "blank labels only");
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean_abs(&[-1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
