//! **Figure 1** — performance estimation error of *no wrong-path
//! modeling* for the GAP benchmarks.
//!
//! Paper result: all errors zero or negative (average −9.6%, up to −22%),
//! because converging wrong paths prefetch data for the upcoming correct
//! path; `pr` is unaffected (no conditional branch in its inner loop) and
//! `tc` is mainly compute-bound.

use ffsim_bench::{gap_suite, mean, render_table, run_mode, GAP_MAX_INSTRUCTIONS};
use ffsim_core::WrongPathMode;
use ffsim_uarch::CoreConfig;

fn main() {
    let core = CoreConfig::golden_cove_like();
    let mut rows = Vec::new();
    let mut errors = Vec::new();
    println!("FIGURE 1: error of no wrong-path modeling vs wrong-path emulation (GAP)\n");
    for w in gap_suite() {
        let nowp = run_mode(&w, &core, WrongPathMode::NoWrongPath, GAP_MAX_INSTRUCTIONS);
        let wpemul = run_mode(
            &w,
            &core,
            WrongPathMode::WrongPathEmulation,
            GAP_MAX_INSTRUCTIONS,
        );
        let err = nowp.error_vs(&wpemul);
        errors.push(err);
        let bar_len = (err.abs() / 2.0).round() as usize;
        rows.push(vec![
            w.name().to_string(),
            format!("{err:+.1}%"),
            format!("{:.3}", nowp.ipc()),
            format!("{:.3}", wpemul.ipc()),
            format!(
                "{}{}",
                if err < 0.0 { "-" } else { "+" },
                "#".repeat(bar_len)
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "error",
                "ipc(nowp)",
                "ipc(wpemul)",
                "bar (2%/#)"
            ],
            &rows
        )
    );
    println!("average error: {:+.1}%", mean(&errors));
    println!("paper: all errors <= 0, average -9.6%, worst -22% (bc); pr/tc least affected");
}
