//! **Ablations** — quantifying the design choices the paper calls out in
//! §III-C.3 but does not evaluate separately:
//!
//! 1. one-sided vs two-sided convergence detection,
//! 2. dirty-register (independence) tracking on vs off — the "overly
//!    optimistic" pitfall,
//! 3. code-cache capacity sweep,
//! 4. frontend queue depth sweep (how much correct-path future the
//!    convergence scan can see).
//!
//! Each ablation reports the convergence-technique error against the same
//! wrong-path-emulation reference.

use ffsim_bench::{gap_suite, render_table, GAP_MAX_INSTRUCTIONS};
use ffsim_core::{ConvergenceConfig, SimConfig, SimResult, Simulator, WrongPathMode};
use ffsim_uarch::CoreConfig;
use ffsim_workloads::Workload;

fn run_conv(
    w: &Workload,
    core: &CoreConfig,
    convergence: ConvergenceConfig,
    code_cache_capacity: Option<usize>,
) -> SimResult {
    let mut cfg = SimConfig::with_core(core.clone(), WrongPathMode::ConvergenceExploitation);
    cfg.max_instructions = Some(GAP_MAX_INSTRUCTIONS);
    cfg.convergence = convergence;
    cfg.code_cache_capacity = code_cache_capacity;
    Simulator::new(w.program().clone(), w.memory().clone(), cfg)
        .unwrap()
        .run()
        .unwrap()
}

fn run_reference(w: &Workload, core: &CoreConfig) -> SimResult {
    let mut cfg = SimConfig::with_core(core.clone(), WrongPathMode::WrongPathEmulation);
    cfg.max_instructions = Some(GAP_MAX_INSTRUCTIONS);
    Simulator::new(w.program().clone(), w.memory().clone(), cfg)
        .unwrap()
        .run()
        .unwrap()
}

fn main() {
    let core = CoreConfig::golden_cove_like();
    // Use the three most convergence-sensitive kernels to keep runtime sane.
    let suite: Vec<Workload> = gap_suite()
        .into_iter()
        .filter(|w| matches!(w.name(), "bc" | "bfs" | "sssp"))
        .collect();
    let refs: Vec<SimResult> = suite.iter().map(|w| run_reference(w, &core)).collect();

    // --- Ablation 1 & 2: convergence detection and independence check. ---
    println!("ABLATION 1+2: convergence detection scope and dirty-register tracking\n");
    let variants = [
        ("one-sided + dirty (paper)", true, true),
        ("two-sided + dirty", false, true),
        ("one-sided, no dirty (optimistic)", true, false),
    ];
    let mut rows = Vec::new();
    for w in &suite {
        let reference = &refs[suite.iter().position(|x| x.name() == w.name()).unwrap()];
        let mut row = vec![w.name().to_string()];
        for (_, one_sided, dirty) in variants {
            let r = run_conv(
                w,
                &core,
                ConvergenceConfig {
                    one_sided_only: one_sided,
                    track_dirty_regs: dirty,
                },
                None,
            );
            row.push(format!(
                "{:+.1}% (rec {:.0}%)",
                r.error_vs(reference),
                r.convergence.recover_frac() * 100.0
            ));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["benchmark", variants[0].0, variants[1].0, variants[2].0],
            &rows
        )
    );
    println!("note: disabling the independence check recovers more addresses but");
    println!("optimistically turns mismatched wrong-path accesses into guaranteed");
    println!("future hits (the paper's \"optimism pitfall\").\n");

    // --- Ablation 3: code-cache capacity (on the big-code kernel, whose
    // static footprint actually exceeds small code caches). ---
    println!("ABLATION 3: code-cache capacity (conv error / code-cache miss rate)\n");
    println!("target: big_code (gcc-like, ~51K static instructions)\n");
    let big =
        ffsim_workloads::speclike::big_code(3_000, 60_000, 2026 ^ 7).expect("canonical parameters");
    let big_ref = {
        let mut cfg = SimConfig::with_core(core.clone(), WrongPathMode::WrongPathEmulation);
        cfg.max_instructions = Some(1_500_000);
        Simulator::new(big.program().clone(), big.memory().clone(), cfg)
            .unwrap()
            .run()
            .unwrap()
    };
    let caps: [Option<usize>; 4] = [Some(1024), Some(8192), Some(32_768), None];
    let mut row = vec!["big_code".to_string()];
    for cap in caps {
        let mut cfg = SimConfig::with_core(core.clone(), WrongPathMode::ConvergenceExploitation);
        cfg.max_instructions = Some(1_500_000);
        cfg.code_cache_capacity = cap;
        let r = Simulator::new(big.program().clone(), big.memory().clone(), cfg)
            .unwrap()
            .run()
            .unwrap();
        let cc = r.code_cache;
        let miss_rate = if cc.hits + cc.misses == 0 {
            0.0
        } else {
            cc.misses as f64 * 100.0 / (cc.hits + cc.misses) as f64
        };
        row.push(format!("{:+.1}% / {miss_rate:.0}%", r.error_vs(&big_ref)));
    }
    println!(
        "{}",
        render_table(
            &["benchmark", "1K entries", "8K", "32K", "unbounded"],
            &[row]
        )
    );
    println!("(small code caches stop wrong-path reconstruction early: the error");
    println!("drifts back toward the no-wrong-path result)\n");

    // --- Ablation 4: frontend queue depth. ---
    println!("ABLATION 4: frontend runahead queue depth (conv error / addr recover)\n");
    let depths = [64usize, 128, 256, 2048];
    let mut rows = Vec::new();
    for w in &suite {
        let reference = &refs[suite.iter().position(|x| x.name() == w.name()).unwrap()];
        let mut row = vec![w.name().to_string()];
        for depth in depths {
            let mut c = core.clone();
            c.queue_depth = depth;
            let r = run_conv(w, &c, ConvergenceConfig::default(), None);
            row.push(format!(
                "{:+.1}% / {:.0}%",
                r.error_vs(reference),
                r.convergence.recover_frac() * 100.0
            ));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["benchmark", "depth 64", "128", "256", "2048"], &rows)
    );
    println!("\n(shallow queues truncate the visible correct-path future below the");
    println!("ROB size, cutting address recovery — the paper's \"not enough");
    println!("instructions in the queue\" case)");

    // --- Ablation 5: memory latency (the Cain-vs-Mutlu dispute, §VI-B). ---
    // Cain et al. (70-cycle memory) found wrong-path effects negligible;
    // Mutlu et al. (250+ cycles) found up to 10% error. The paper explains
    // the difference: memory latency sets the branch resolution time and
    // with it the time spent on the wrong path.
    println!("\nABLATION 5: nowp error vs DRAM latency (the Cain/Mutlu dispute)\n");
    let latencies = [70u64, 150, 260, 400];
    let mut rows = Vec::new();
    for w in &suite {
        let mut row = vec![w.name().to_string()];
        for lat in latencies {
            let mut c = core.clone();
            c.dram.latency = lat;
            let mut cfg = SimConfig::with_core(c.clone(), WrongPathMode::NoWrongPath);
            cfg.max_instructions = Some(GAP_MAX_INSTRUCTIONS);
            let nowp = Simulator::new(w.program().clone(), w.memory().clone(), cfg)
                .unwrap()
                .run()
                .unwrap();
            let mut cfg = SimConfig::with_core(c, WrongPathMode::WrongPathEmulation);
            cfg.max_instructions = Some(GAP_MAX_INSTRUCTIONS);
            let emul = Simulator::new(w.program().clone(), w.memory().clone(), cfg)
                .unwrap()
                .run()
                .unwrap();
            row.push(format!("{:+.1}%", nowp.error_vs(&emul)));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["benchmark", "70 cycles", "150", "260 (paper)", "400"],
            &rows
        )
    );
    println!("(short memory latencies shrink branch resolution times and with them");
    println!("the wrong-path window — reconciling Cain et al. with Mutlu et al.)");

    // --- Ablation 6: interaction with an L2 next-line prefetcher. ---
    println!("\nABLATION 6: nowp error with an L2 next-line prefetcher\n");
    let mut rows = Vec::new();
    for w in &suite {
        let mut row = vec![w.name().to_string()];
        for pf in [false, true] {
            let mut c = core.clone();
            c.l2_next_line_prefetcher = pf;
            let mut cfg = SimConfig::with_core(c.clone(), WrongPathMode::NoWrongPath);
            cfg.max_instructions = Some(GAP_MAX_INSTRUCTIONS);
            let nowp = Simulator::new(w.program().clone(), w.memory().clone(), cfg)
                .unwrap()
                .run()
                .unwrap();
            let mut cfg = SimConfig::with_core(c, WrongPathMode::WrongPathEmulation);
            cfg.max_instructions = Some(GAP_MAX_INSTRUCTIONS);
            let emul = Simulator::new(w.program().clone(), w.memory().clone(), cfg)
                .unwrap()
                .run()
                .unwrap();
            row.push(format!("{:+.1}%", nowp.error_vs(&emul)));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["benchmark", "no prefetcher", "next-line L2"], &rows)
    );
    println!("(a hardware prefetcher independently warms the same lines the wrong");
    println!("path would have touched, so unmodeled wrong paths cost less accuracy)");

    // --- Ablation 7: predictor strength vs convergence recovery. ---
    // Wrong-path reconstruction steers by prediction: a weaker predictor
    // mispredicts more *within* the wrong path, diverging from the future
    // correct path earlier and cutting address recovery.
    println!("\nABLATION 7: direction-predictor strength (conv error / addr recover)\n");
    let history_bits = [2u32, 6, 14];
    let mut rows = Vec::new();
    for w in &suite {
        let mut row = vec![w.name().to_string()];
        for bits in history_bits {
            let mut c = core.clone();
            c.branch.gshare_history_bits = bits;
            c.branch.gshare_table_bits = bits.max(10);
            // Reference must use the same predictor: the error isolates the
            // wrong-path modeling, not predictor accuracy itself.
            let mut cfg = SimConfig::with_core(c.clone(), WrongPathMode::WrongPathEmulation);
            cfg.max_instructions = Some(GAP_MAX_INSTRUCTIONS);
            let emul = Simulator::new(w.program().clone(), w.memory().clone(), cfg)
                .unwrap()
                .run()
                .unwrap();
            let r = run_conv(w, &c, ConvergenceConfig::default(), None);
            row.push(format!(
                "{:+.1}% / {:.0}%",
                r.error_vs(&emul),
                r.convergence.recover_frac() * 100.0
            ));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["benchmark", "2-bit history", "6-bit", "14-bit (paper-like)"],
            &rows
        )
    );
    println!("(measured result: recovery is largely *insensitive* to history");
    println!("length on GAP — the branches that derail the lock-step scan are");
    println!("data-random visited/relax checks that no amount of history fixes,");
    println!("so the conservative convergence technique is robust to predictor");
    println!("sizing)");
}
