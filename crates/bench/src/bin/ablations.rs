//! **Ablations** — quantifying the design choices the paper calls out in
//! §III-C.3 but does not evaluate separately:
//!
//! 1. one-sided vs two-sided convergence detection,
//! 2. dirty-register (independence) tracking on vs off — the "overly
//!    optimistic" pitfall,
//! 3. code-cache capacity sweep,
//! 4. frontend queue depth sweep (how much correct-path future the
//!    convergence scan can see).
//!
//! Each ablation reports the convergence-technique error against the same
//! wrong-path-emulation reference.
//!
//! All ~80 simulations across the seven studies are submitted as a single
//! supervised campaign and executed in parallel across the worker pool
//! (panic-isolated, watchdog-bounded); the tables are then assembled from
//! the records by job id.

use ffsim_bench::{
    expect_sim, gap_suite, owned_workload, render_table, run_supervised, workload_fn,
    GAP_MAX_INSTRUCTIONS,
};
use ffsim_core::{ConvergenceConfig, SimResult, WrongPathMode};
use ffsim_driver::{Job, WorkloadFn};
use ffsim_uarch::CoreConfig;
use ffsim_workloads::Workload;
use std::sync::Arc;

/// A convergence-mode job with the given tunables.
fn conv_job(
    id: String,
    workload: WorkloadFn,
    core: &CoreConfig,
    max_instructions: u64,
    convergence: ConvergenceConfig,
    code_cache_capacity: Option<usize>,
) -> Job {
    Job::new(id, WrongPathMode::ConvergenceExploitation, workload)
        .with_core(core.clone())
        .with_max_instructions(max_instructions)
        .no_degradation()
        .with_tweak(Arc::new(move |cfg| {
            cfg.convergence = convergence;
            cfg.code_cache_capacity = code_cache_capacity;
        }))
}

/// A wrong-path-emulation reference job.
fn ref_job(id: String, workload: WorkloadFn, core: &CoreConfig, max_instructions: u64) -> Job {
    Job::new(id, WrongPathMode::WrongPathEmulation, workload)
        .with_core(core.clone())
        .with_max_instructions(max_instructions)
        .no_degradation()
}

/// A no-wrong-path job.
fn nowp_job(id: String, workload: WorkloadFn, core: &CoreConfig, max_instructions: u64) -> Job {
    Job::new(id, WrongPathMode::NoWrongPath, workload)
        .with_core(core.clone())
        .with_max_instructions(max_instructions)
        .no_degradation()
}

#[allow(clippy::too_many_lines)] // one job-list + one table per ablation, linear and flat
fn main() {
    let core = CoreConfig::golden_cove_like();
    // Use the three most convergence-sensitive kernels to keep runtime sane.
    let suite: Vec<Workload> = gap_suite()
        .into_iter()
        .filter(|w| matches!(w.name(), "bc" | "bfs" | "sssp"))
        .collect();
    let workloads: Vec<(String, WorkloadFn)> = suite
        .iter()
        .map(|w| (w.name().to_string(), workload_fn(w)))
        .collect();

    let variants = [
        ("one-sided + dirty (paper)", true, true),
        ("two-sided + dirty", false, true),
        ("one-sided, no dirty (optimistic)", true, false),
    ];
    let caps: [Option<usize>; 4] = [Some(1024), Some(8192), Some(32_768), None];
    let depths = [64usize, 128, 256, 2048];
    let latencies = [70u64, 150, 260, 400];
    let history_bits = [2u32, 6, 14];

    let big =
        ffsim_workloads::speclike::big_code(3_000, 60_000, 2026 ^ 7).expect("canonical parameters");
    let big_workload = owned_workload(big.program().clone(), big.memory().clone());

    // --- Submit every run of all seven ablations as one campaign. ---
    let mut jobs: Vec<Job> = Vec::new();
    for (name, w) in &workloads {
        jobs.push(ref_job(
            format!("ref/{name}"),
            w.clone(),
            &core,
            GAP_MAX_INSTRUCTIONS,
        ));
        for (label, one_sided, dirty) in variants {
            jobs.push(conv_job(
                format!("a12/{name}/{label}"),
                w.clone(),
                &core,
                GAP_MAX_INSTRUCTIONS,
                ConvergenceConfig {
                    one_sided_only: one_sided,
                    track_dirty_regs: dirty,
                },
                None,
            ));
        }
        for depth in depths {
            let mut c = core.clone();
            c.queue_depth = depth;
            jobs.push(conv_job(
                format!("a4/{name}/{depth}"),
                w.clone(),
                &c,
                GAP_MAX_INSTRUCTIONS,
                ConvergenceConfig::default(),
                None,
            ));
        }
        for lat in latencies {
            let mut c = core.clone();
            c.dram.latency = lat;
            jobs.push(nowp_job(
                format!("a5/{name}/{lat}/nowp"),
                w.clone(),
                &c,
                GAP_MAX_INSTRUCTIONS,
            ));
            jobs.push(ref_job(
                format!("a5/{name}/{lat}/wpemul"),
                w.clone(),
                &c,
                GAP_MAX_INSTRUCTIONS,
            ));
        }
        for pf in [false, true] {
            let mut c = core.clone();
            c.l2_next_line_prefetcher = pf;
            jobs.push(nowp_job(
                format!("a6/{name}/{pf}/nowp"),
                w.clone(),
                &c,
                GAP_MAX_INSTRUCTIONS,
            ));
            jobs.push(ref_job(
                format!("a6/{name}/{pf}/wpemul"),
                w.clone(),
                &c,
                GAP_MAX_INSTRUCTIONS,
            ));
        }
        for bits in history_bits {
            let mut c = core.clone();
            c.branch.gshare_history_bits = bits;
            c.branch.gshare_table_bits = bits.max(10);
            // Reference must use the same predictor: the error isolates the
            // wrong-path modeling, not predictor accuracy itself.
            jobs.push(ref_job(
                format!("a7/{name}/{bits}/wpemul"),
                w.clone(),
                &c,
                GAP_MAX_INSTRUCTIONS,
            ));
            jobs.push(conv_job(
                format!("a7/{name}/{bits}/conv"),
                w.clone(),
                &c,
                GAP_MAX_INSTRUCTIONS,
                ConvergenceConfig::default(),
                None,
            ));
        }
    }
    jobs.push(ref_job(
        "a3/ref".to_string(),
        big_workload.clone(),
        &core,
        1_500_000,
    ));
    for cap in caps {
        jobs.push(conv_job(
            format!("a3/cap/{cap:?}"),
            big_workload.clone(),
            &core,
            1_500_000,
            ConvergenceConfig::default(),
            cap,
        ));
    }
    let records = run_supervised(jobs);
    let sim = |id: String| -> &SimResult { expect_sim(&records, &id) };

    // --- Ablation 1 & 2: convergence detection and independence check. ---
    println!("ABLATION 1+2: convergence detection scope and dirty-register tracking\n");
    let mut rows = Vec::new();
    for (name, _) in &workloads {
        let reference = sim(format!("ref/{name}"));
        let mut row = vec![name.clone()];
        for (label, _, _) in variants {
            let r = sim(format!("a12/{name}/{label}"));
            row.push(format!(
                "{:+.1}% (rec {:.0}%)",
                r.error_vs(reference),
                r.convergence.recover_frac() * 100.0
            ));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["benchmark", variants[0].0, variants[1].0, variants[2].0],
            &rows
        )
    );
    println!("note: disabling the independence check recovers more addresses but");
    println!("optimistically turns mismatched wrong-path accesses into guaranteed");
    println!("future hits (the paper's \"optimism pitfall\").\n");

    // --- Ablation 3: code-cache capacity (on the big-code kernel, whose
    // static footprint actually exceeds small code caches). ---
    println!("ABLATION 3: code-cache capacity (conv error / code-cache miss rate)\n");
    println!("target: big_code (gcc-like, ~51K static instructions)\n");
    let big_ref = sim("a3/ref".to_string());
    let mut row = vec!["big_code".to_string()];
    for cap in caps {
        let r = sim(format!("a3/cap/{cap:?}"));
        let cc = r.code_cache;
        let miss_rate = if cc.hits + cc.misses == 0 {
            0.0
        } else {
            cc.misses as f64 * 100.0 / (cc.hits + cc.misses) as f64
        };
        row.push(format!("{:+.1}% / {miss_rate:.0}%", r.error_vs(big_ref)));
    }
    println!(
        "{}",
        render_table(
            &["benchmark", "1K entries", "8K", "32K", "unbounded"],
            &[row]
        )
    );
    println!("(small code caches stop wrong-path reconstruction early: the error");
    println!("drifts back toward the no-wrong-path result)\n");

    // --- Ablation 4: frontend queue depth. ---
    println!("ABLATION 4: frontend runahead queue depth (conv error / addr recover)\n");
    let mut rows = Vec::new();
    for (name, _) in &workloads {
        let reference = sim(format!("ref/{name}"));
        let mut row = vec![name.clone()];
        for depth in depths {
            let r = sim(format!("a4/{name}/{depth}"));
            row.push(format!(
                "{:+.1}% / {:.0}%",
                r.error_vs(reference),
                r.convergence.recover_frac() * 100.0
            ));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["benchmark", "depth 64", "128", "256", "2048"], &rows)
    );
    println!("\n(shallow queues truncate the visible correct-path future below the");
    println!("ROB size, cutting address recovery — the paper's \"not enough");
    println!("instructions in the queue\" case)");

    // --- Ablation 5: memory latency (the Cain-vs-Mutlu dispute, §VI-B). ---
    // Cain et al. (70-cycle memory) found wrong-path effects negligible;
    // Mutlu et al. (250+ cycles) found up to 10% error. The paper explains
    // the difference: memory latency sets the branch resolution time and
    // with it the time spent on the wrong path.
    println!("\nABLATION 5: nowp error vs DRAM latency (the Cain/Mutlu dispute)\n");
    let mut rows = Vec::new();
    for (name, _) in &workloads {
        let mut row = vec![name.clone()];
        for lat in latencies {
            let nowp = sim(format!("a5/{name}/{lat}/nowp"));
            let emul = sim(format!("a5/{name}/{lat}/wpemul"));
            row.push(format!("{:+.1}%", nowp.error_vs(emul)));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["benchmark", "70 cycles", "150", "260 (paper)", "400"],
            &rows
        )
    );
    println!("(short memory latencies shrink branch resolution times and with them");
    println!("the wrong-path window — reconciling Cain et al. with Mutlu et al.)");

    // --- Ablation 6: interaction with an L2 next-line prefetcher. ---
    println!("\nABLATION 6: nowp error with an L2 next-line prefetcher\n");
    let mut rows = Vec::new();
    for (name, _) in &workloads {
        let mut row = vec![name.clone()];
        for pf in [false, true] {
            let nowp = sim(format!("a6/{name}/{pf}/nowp"));
            let emul = sim(format!("a6/{name}/{pf}/wpemul"));
            row.push(format!("{:+.1}%", nowp.error_vs(emul)));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["benchmark", "no prefetcher", "next-line L2"], &rows)
    );
    println!("(a hardware prefetcher independently warms the same lines the wrong");
    println!("path would have touched, so unmodeled wrong paths cost less accuracy)");

    // --- Ablation 7: predictor strength vs convergence recovery. ---
    // Wrong-path reconstruction steers by prediction: a weaker predictor
    // mispredicts more *within* the wrong path, diverging from the future
    // correct path earlier and cutting address recovery.
    println!("\nABLATION 7: direction-predictor strength (conv error / addr recover)\n");
    let mut rows = Vec::new();
    for (name, _) in &workloads {
        let mut row = vec![name.clone()];
        for bits in history_bits {
            let emul = sim(format!("a7/{name}/{bits}/wpemul"));
            let r = sim(format!("a7/{name}/{bits}/conv"));
            row.push(format!(
                "{:+.1}% / {:.0}%",
                r.error_vs(emul),
                r.convergence.recover_frac() * 100.0
            ));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["benchmark", "2-bit history", "6-bit", "14-bit (paper-like)"],
            &rows
        )
    );
    println!("(measured result: recovery is largely *insensitive* to history");
    println!("length on GAP — the branches that derail the lock-step scan are");
    println!("data-random visited/relax checks that no amount of history fixes,");
    println!("so the conservative convergence technique is robust to predictor");
    println!("sizing)");
}
