//! §V-B drill-down — *where* does the per-technique slowdown go?
//!
//! `speed_comparison` reports that wrong-path modeling costs 4.5–6.5× on
//! average (26× worst case); this binary runs a reduced GAP + SPEC-like
//! subset under every technique with the phase profiler enabled
//! (`ObsConfig::profiled()`) and attributes the host time to the fixed
//! phase taxonomy (`emu_exec`, `emu_handoff`, `block_decode`,
//! `timing_pipeline`, `technique_hook:<label>`, `frontend_fetch`).
//!
//! Output discipline:
//!
//! * **stdout** is byte-deterministic: per-phase *scope counts* (how many
//!   times each phase was entered) and instruction counters. These depend
//!   only on the simulated instruction stream, never on host speed, so
//!   the committed copy at `results_profile.txt` is golden-checked by
//!   `results_check`.
//! * **stderr** carries the volatile half: wall time, slowdown vs `nowp`,
//!   telescoping coverage and the dominant phase per run.
//! * `--volatile` appends the host-dependent attribution table (per-phase
//!   share of attributed time) to stdout for human consumption.
//! * `--prom PATH` writes a deterministic Prometheus exposition of the
//!   stable counters through the unified [`MetricsRegistry`].
//!
//! Every run must satisfy the telescoping invariant (attributed phase
//! time ≥95% of wall time); a violation exits non-zero.

use ffsim_bench::{gap_suite, render_table, spec_suite};
use ffsim_core::{SimConfig, SimResult, Simulator, WrongPathMode};
use ffsim_obs::{MetricsRegistry, ObsConfig, Phase, PhaseProfiler};
use ffsim_uarch::CoreConfig;
use ffsim_workloads::Workload;
use std::path::PathBuf;
use std::process::ExitCode;

/// Correct-path budget for the GAP subset (reduced from the full
/// experiment budget: attribution shares stabilize long before error
/// metrics do, and this binary runs twice in CI).
const GAP_BUDGET: u64 = 300_000;
/// Correct-path budget for the SPEC-like subset.
const SPEC_BUDGET: u64 = 200_000;

/// GAP kernels profiled (converging, branch-missing graph code).
const GAP_SUBSET: &[&str] = &["bfs", "pr"];
/// SPEC-like kernels profiled. `binary_search` is the paper's worst-case
/// slowdown (≈26× under full wrong-path emulation) and must stay in the
/// subset so the attribution names where that factor goes.
const SPEC_SUBSET: &[&str] = &["hash_probe", "binary_search"];

/// The simulator-side phases whose scope counts are deterministic (the
/// driver phases never fire inside a bare simulation).
const SIM_PHASES: [Phase; 6] = [
    Phase::FrontendFetch,
    Phase::EmuExec,
    Phase::EmuHandoff,
    Phase::BlockDecode,
    Phase::TimingPipeline,
    Phase::TechniqueHook,
];

struct Run {
    mode: WrongPathMode,
    result: SimResult,
    profile: PhaseProfiler,
}

/// Runs one workload under `mode` with phase profiling on (and event
/// tracing off, independent of `FFSIM_OBS`, so stdout stays
/// reproducible in any environment).
fn run_profiled(workload: &Workload, core: &CoreConfig, mode: WrongPathMode, budget: u64) -> Run {
    let mut cfg = SimConfig::with_core(core.clone(), mode);
    cfg.max_instructions = Some(budget);
    cfg.obs = ObsConfig::profiled();
    let result = Simulator::new(workload.program().clone(), workload.memory().clone(), cfg)
        .and_then(Simulator::run)
        .unwrap_or_else(|e| panic!("profiled workload failed under {mode}: {e}"));
    let profile = result
        .obs
        .as_ref()
        .map(|obs| obs.profile.clone())
        .unwrap_or_else(|| panic!("profiled run under {mode} produced no ObsReport"));
    Run {
        mode,
        result,
        profile,
    }
}

/// The deterministic scope-count table for one workload.
fn render_counts(runs: &[Run]) -> String {
    let mut headers = vec!["technique", "instrs", "wp_instrs"];
    headers.extend(SIM_PHASES.iter().map(|p| p.name()));
    headers.extend(["blk_hits", "blk_miss"]);
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|run| {
            let mut row = vec![
                run.mode.label().to_string(),
                run.result.instructions.to_string(),
                run.result.wrong_path_instructions.to_string(),
            ];
            row.extend(
                SIM_PHASES
                    .iter()
                    .map(|&p| run.profile.phase_agg(p).count.to_string()),
            );
            // Block-cache traffic is a function of the wrong paths the
            // stream takes — deterministic like the scope counts.
            row.push(run.result.block_cache.hits.to_string());
            row.push(run.result.block_cache.misses.to_string());
            row
        })
        .collect();
    render_table(&headers, &rows)
}

/// The host-dependent attribution table (only under `--volatile`):
/// slowdown vs `nowp` and each phase's share of attributed time.
fn render_shares(runs: &[Run]) -> String {
    let nowp_wall = runs
        .iter()
        .find(|r| r.mode == WrongPathMode::NoWrongPath)
        .map(|r| r.result.clone());
    let mut headers = vec!["technique", "slowdown", "wall_ms"];
    headers.extend(SIM_PHASES.iter().map(|p| p.name()));
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|run| {
            let slowdown = nowp_wall.as_ref().map_or_else(
                || "-".to_string(),
                |n| format!("{:.2}x", run.result.slowdown_vs(n)),
            );
            let attributed = run.profile.attributed_ns().max(1);
            let mut row = vec![
                run.mode.label().to_string(),
                slowdown,
                format!("{:.2}", run.result.wall_time.as_secs_f64() * 1e3),
            ];
            row.extend(SIM_PHASES.iter().map(|&p| {
                let ns = run.profile.phase_agg(p).total_ns;
                format!("{}%", ns.saturating_mul(100) / attributed)
            }));
            row
        })
        .collect();
    render_table(&headers, &rows)
}

/// Folds one run's stable counters into the Prometheus registry. Names
/// use the `:`-separated recording-rule dialect the registry accepts, so
/// the snapshot is a pure function of the simulated instruction stream.
fn record_prom(reg: &mut MetricsRegistry, group: &str, workload: &str, run: &Run) {
    let mut count = |name: String, v: u64| {
        let id = reg
            .counter(&name)
            .expect("perf_attrib metric names are valid");
        reg.inc(id, v);
    };
    let key = format!("{group}:{workload}:{}", run.mode.label());
    count("ffsim_profile_runs_total".into(), 1);
    count(
        format!("ffsim_profile_instructions_total:{key}"),
        run.result.instructions,
    );
    count(
        format!("ffsim_profile_wrong_path_total:{key}"),
        run.result.wrong_path_instructions,
    );
    for &p in &SIM_PHASES {
        count(
            format!("ffsim_profile_scopes_total:{key}:{}", p.name()),
            run.profile.phase_agg(p).count,
        );
    }
    count(
        format!("ffsim_profile_block_cache_hits_total:{key}"),
        run.result.block_cache.hits,
    );
    count(
        format!("ffsim_profile_block_cache_misses_total:{key}"),
        run.result.block_cache.misses,
    );
}

struct Args {
    volatile: bool,
    prom: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        volatile: false,
        prom: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--volatile" => args.volatile = true,
            "--prom" => args.prom = Some(PathBuf::from(argv.next().ok_or("--prom needs a value")?)),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("perf_attrib: {e}");
            eprintln!("usage: perf_attrib [--volatile] [--prom PATH]");
            return ExitCode::FAILURE;
        }
    };

    let core = CoreConfig::golden_cove_like();
    let gap: Vec<Workload> = gap_suite()
        .into_iter()
        .filter(|w| GAP_SUBSET.contains(&w.name()))
        .collect();
    let spec: Vec<Workload> = spec_suite()
        .into_iter()
        .map(|k| k.workload)
        .filter(|w| SPEC_SUBSET.contains(&w.name()))
        .collect();
    let groups: [(&str, &[Workload], u64); 2] =
        [("gap", &gap, GAP_BUDGET), ("spec", &spec, SPEC_BUDGET)];

    let mut out = String::new();
    out.push_str(
        "perf_attrib — host-phase attribution of the wrong-path slowdown\n\
         Scope counts below are deterministic (a function of the simulated\n\
         instruction stream); wall times and shares are host-dependent and\n\
         go to stderr (or stdout under --volatile).\n",
    );
    let mut prom = MetricsRegistry::enabled();
    let mut violations: Vec<String> = Vec::new();
    let mut worst_case: Option<(String, f64, String)> = None;

    for (group, workloads, budget) in groups {
        for workload in workloads {
            let runs: Vec<Run> = WrongPathMode::ALL
                .iter()
                .map(|&mode| run_profiled(workload, &core, mode, budget))
                .collect();
            let nowp = runs
                .iter()
                .find(|r| r.mode == WrongPathMode::NoWrongPath)
                .expect("ALL contains nowp")
                .result
                .clone();
            for run in &runs {
                let coverage = run.profile.coverage_permille();
                let dominant = run
                    .profile
                    .dominant_phase()
                    .map_or_else(|| "-".to_string(), |(p, _)| run.profile.phase_label(p));
                let slowdown = run.result.slowdown_vs(&nowp);
                eprintln!(
                    "perf_attrib: {group}/{}/{}: wall {:.2} ms, {slowdown:.2}x vs nowp, \
                     coverage {coverage}‰, dominant {dominant}",
                    workload.name(),
                    run.mode.label(),
                    run.result.wall_time.as_secs_f64() * 1e3,
                );
                if !run.profile.telescopes() {
                    violations.push(format!(
                        "{group}/{}/{}: attributed {coverage}‰ of wall time (floor {}‰)",
                        workload.name(),
                        run.mode.label(),
                        ffsim_obs::TELESCOPE_FLOOR_PERMILLE
                    ));
                }
                if run.mode != WrongPathMode::NoWrongPath
                    && worst_case.as_ref().is_none_or(|(_, s, _)| slowdown > *s)
                {
                    worst_case = Some((
                        format!("{group}/{}/{}", workload.name(), run.mode.label()),
                        slowdown,
                        dominant,
                    ));
                }
                record_prom(&mut prom, group, workload.name(), run);
            }
            out.push_str(&format!(
                "\n== {group}/{} ({budget} correct-path instr budget) ==\n",
                workload.name()
            ));
            out.push_str(&render_counts(&runs));
            if args.volatile {
                out.push_str("-- host attribution (volatile) --\n");
                out.push_str(&render_shares(&runs));
            }
        }
    }

    print!("{out}");
    if let Some((name, slowdown, dominant)) = &worst_case {
        eprintln!(
            "perf_attrib: worst case {name}: {slowdown:.2}x vs nowp — dominated by {dominant}"
        );
    }
    if let Some(path) = &args.prom {
        if let Err(e) = std::fs::write(path, prom.render_prometheus()) {
            eprintln!("perf_attrib: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("perf_attrib: TELESCOPE {v}");
        }
        eprintln!(
            "perf_attrib: {} run(s) violate the telescoping invariant",
            violations.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
