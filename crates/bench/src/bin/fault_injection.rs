//! Fault-injection harness: deterministically injects faults into
//! *wrong-path* execution and asserts the *correct path* is untouched.
//!
//! Rationale: under the squash policy (the default), a fault raised during
//! wrong-path emulation must behave exactly like hardware — the speculative
//! work is thrown away, the checkpoint is restored, and the run continues as
//! if nothing happened. This harness proves that end to end: for every
//! scenario and every wrong-path modeling technique, the injected run must
//! retire the same number of correct-path instructions and end in a
//! bit-identical architectural state (registers, pc, logical memory) as the
//! uninjected run.
//!
//! Scenarios (all knobs of [`SimConfig`], all deterministic):
//!
//! * `pc-corruption` — every wrong-path start pc is XORed with a mask,
//!   sending speculative fetch outside the program text (observable as
//!   illegal-pc stops),
//! * `oob-load` — an address limit placed just past the workload's array:
//!   the wrong path after the loop-exit misprediction keeps striding upward
//!   and faults (observable as squashed faults),
//! * `div-zero` — divide-by-zero trapping enabled for a loop whose divisor
//!   reaches zero only on the wrong path (observable as squashed faults),
//! * `watchdog` — a tiny speculative-instruction watchdog tripping on the
//!   wrong path's runaway loop (observable as watchdog trips).
//!
//! A final section flips [`FaultPolicy`] to `AbortRun` and checks that the
//! same injections now surface as typed wrong-path faults.
//!
//! All clean/injected runs execute as one supervised campaign through the
//! driver; the expected-to-fail `AbortRun` jobs demonstrate that a failing
//! job is recorded with its typed error while sibling jobs are untouched.

use ffsim_bench::{expect_sim, owned_workload, render_table, run_supervised};
use ffsim_core::{FaultStats, PcCorruption, SimConfig, WrongPathMode};
use ffsim_driver::{AttemptOutcome, Job, JobStatus};
use ffsim_emu::{FaultPolicy, Memory};
use ffsim_isa::{Program, Reg};
use ffsim_uarch::CoreConfig;
use std::sync::Arc;

/// Loop trip count; long enough to train the predictor so the loop exit is
/// the one guaranteed misprediction.
const TRIPS: i64 = 3_000;
/// Base address of the workload array.
const ARRAY_BASE: u64 = 0x1000_0000;
/// First data address past the array — the injected address limit.
const ARRAY_LIMIT: u64 = ARRAY_BASE + 8 * TRIPS as u64;

/// Count-down loop with a division: `q = c / i` with `i` in `TRIPS..=1` on
/// the correct path. The wrong path at loop exit re-enters the body with
/// `i = 0` (divide by zero) and then loops with `i` ever more negative
/// (runaway — watchdog fodder).
fn countdown_div() -> Program {
    let (i, c, q) = (Reg::new(1), Reg::new(2), Reg::new(3));
    let mut a = ffsim_isa::Asm::new();
    a.li(i, TRIPS);
    a.li(c, 1_000_003);
    a.label("loop");
    a.div(q, c, i);
    a.addi(i, i, -1);
    a.bnez(i, "loop");
    a.halt();
    a.assemble().expect("countdown_div assembles")
}

/// Count-up strided loads: `v = a[i]` for `i` in `0..TRIPS` on the correct
/// path, touching exactly `[ARRAY_BASE, ARRAY_LIMIT)`. The wrong path at
/// loop exit keeps striding past the end of the array.
fn countup_load() -> Program {
    let (i, n, base, t, v) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
    );
    let mut a = ffsim_isa::Asm::new();
    a.li(i, 0);
    a.li(n, TRIPS);
    a.li(base, ARRAY_BASE as i64);
    a.label("loop");
    a.slli(t, i, 3);
    a.add(t, t, base);
    a.ld(v, 0, t);
    a.addi(i, i, 1);
    a.blt(i, n, "loop");
    a.halt();
    a.assemble().expect("countup_load assembles")
}

/// One injection scenario: a workload, a config mutation, and the
/// wrong-path-emulation counter that must prove the injection happened.
struct Scenario {
    name: &'static str,
    program: Program,
    inject: fn(&mut SimConfig),
    observed: fn(&FaultStats) -> u64,
    observed_name: &'static str,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "pc-corruption",
            program: countdown_div(),
            inject: |cfg| {
                cfg.wp_pc_corruption = Some(PcCorruption {
                    every_nth: 1,
                    xor_mask: 0xffff_0000,
                });
            },
            observed: |f| f.illegal_pc_stops,
            observed_name: "illegal-pc stops",
        },
        Scenario {
            name: "oob-load",
            program: countup_load(),
            inject: |cfg| cfg.fault_model.addr_limit = Some(ARRAY_LIMIT),
            observed: |f| f.squashed_faults,
            observed_name: "squashed faults",
        },
        Scenario {
            name: "div-zero",
            program: countdown_div(),
            inject: |cfg| cfg.fault_model.trap_div_zero = true,
            observed: |f| f.squashed_faults,
            observed_name: "squashed faults",
        },
        Scenario {
            name: "watchdog",
            program: countdown_div(),
            inject: |cfg| cfg.wrong_path_watchdog = Some(16),
            observed: |f| f.watchdog_trips,
            observed_name: "watchdog trips",
        },
    ]
}

fn main() {
    // Submit every run — clean and injected, all four modes, plus the
    // expected-to-fail AbortRun jobs — as one supervised campaign.
    let core = CoreConfig::golden_cove_like();
    let mut jobs = Vec::new();
    for s in scenarios() {
        let workload = owned_workload(s.program.clone(), Memory::new());
        for mode in WrongPathMode::ALL {
            jobs.push(
                Job::new(format!("{}/{mode}/clean", s.name), mode, workload.clone())
                    .with_core(core.clone())
                    .no_degradation(),
            );
            jobs.push(
                Job::new(
                    format!("{}/{mode}/injected", s.name),
                    mode,
                    workload.clone(),
                )
                .with_core(core.clone())
                .no_degradation()
                .with_tweak(Arc::new(s.inject)),
            );
        }
        if s.name != "pc-corruption" {
            // A corrupted start pc is an ordinary speculation artifact
            // (illegal-pc stop), not a fault, under either policy — no
            // abort-policy job for it.
            let inject = s.inject;
            jobs.push(
                Job::new(
                    format!("abort/{}", s.name),
                    WrongPathMode::WrongPathEmulation,
                    workload.clone(),
                )
                .with_core(core.clone())
                .no_degradation()
                .with_tweak(Arc::new(move |cfg| {
                    inject(cfg);
                    cfg.fault_policy = FaultPolicy::AbortRun;
                })),
            );
        }
    }
    let records = run_supervised(jobs);

    let mut rows = Vec::new();
    let mut checks = 0u32;

    for s in scenarios() {
        let mut digests = Vec::new();
        for mode in WrongPathMode::ALL {
            let clean = expect_sim(&records, &format!("{}/{mode}/clean", s.name));
            let injected = expect_sim(&records, &format!("{}/{mode}/injected", s.name));

            assert_eq!(
                injected.instructions, clean.instructions,
                "{}/{mode}: injection changed the correct-path instruction count",
                s.name
            );
            assert_eq!(
                injected.state_digest, clean.state_digest,
                "{}/{mode}: injection changed the final architectural state",
                s.name
            );
            checks += 2;
            if mode == WrongPathMode::WrongPathEmulation {
                let seen = (s.observed)(&injected.faults);
                assert!(
                    seen > 0,
                    "{}/{mode}: injection was not observable ({} = 0)",
                    s.name,
                    s.observed_name
                );
                checks += 1;
            }
            digests.push(clean.state_digest);
            rows.push(vec![
                s.name.to_string(),
                mode.to_string(),
                injected.instructions.to_string(),
                format!("{:#018x}", injected.state_digest),
                injected.faults.squashed_faults.to_string(),
                injected.faults.watchdog_trips.to_string(),
                injected.faults.illegal_pc_stops.to_string(),
            ]);
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "{}: modes disagree on the final architectural state: {digests:?}",
            s.name
        );
        checks += 1;
    }

    println!("Fault injection: correct path is bit-identical under every injected");
    println!("wrong-path fault, across all four techniques (squash policy).\n");
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "mode",
                "retired",
                "state digest",
                "squashed",
                "wd-trips",
                "illegal-pc"
            ],
            &rows,
        )
    );

    // Under AbortRun the same injections must surface as typed errors —
    // recorded by the driver as failed jobs with the fault message, while
    // every sibling job in the same campaign completed untouched.
    println!("FaultPolicy::AbortRun surfaces the same injections as typed errors:");
    for s in scenarios() {
        if s.name == "pc-corruption" {
            continue;
        }
        let record = records
            .get(&format!("abort/{}", s.name))
            .unwrap_or_else(|| panic!("abort/{} has no record", s.name));
        assert_eq!(
            record.status,
            JobStatus::Failed,
            "{}: abort policy must fail the job",
            s.name
        );
        let AttemptOutcome::Fault(msg) = &record.attempts[0].outcome else {
            panic!(
                "{}: expected a typed fault, got {:?}",
                s.name, record.attempts[0].outcome
            );
        };
        assert!(
            msg.starts_with("wrong-path fault"),
            "{}: expected WrongPathFault, got {msg}",
            s.name
        );
        checks += 1;
        println!("  {:13} -> {msg}", s.name);
    }

    println!("\nok: {checks} assertions passed");
}
