//! **Table I** — the simulated core configuration.
//!
//! Prints the Golden Cove–like configuration used by every experiment,
//! mirroring the paper's Table I (Alder Lake P-core, LLC and memory
//! bandwidth downscaled to a single core's share).

use ffsim_bench::render_table;
use ffsim_uarch::CoreConfig;

fn main() {
    let c = CoreConfig::golden_cove_like();
    let kb = |bytes: u64| format!("{} KiB", bytes / 1024);
    let cache = |cfg: ffsim_uarch::CacheConfig| {
        format!(
            "{}, {}-way, {} B lines, {} cycles",
            kb(cfg.size_bytes),
            cfg.assoc,
            cfg.line_bytes,
            cfg.latency
        )
    };
    let rows = vec![
        vec![
            "Frontend".into(),
            format!(
                "{}-wide fetch/decode, {} cycles deep, {} cycles redirect penalty",
                c.fetch_width, c.frontend_depth, c.redirect_penalty
            ),
        ],
        vec![
            "Window".into(),
            format!(
                "{}-entry ROB, {}-entry scheduler, {}/{} load/store queue",
                c.rob_size, c.iq_size, c.load_queue, c.store_queue
            ),
        ],
        vec!["Retire".into(), format!("{}-wide", c.retire_width)],
        vec![
            "Integer units".into(),
            format!(
                "{} ALU (1c), {} mul ({}c), {} div ({}c, unpipelined)",
                c.int_alu.count,
                c.int_mul.count,
                c.int_mul.latency,
                c.int_div.count,
                c.int_div.latency
            ),
        ],
        vec![
            "FP units".into(),
            format!(
                "{} add ({}c), {} mul ({}c), {} div ({}c, unpipelined)",
                c.fp_add.count,
                c.fp_add.latency,
                c.fp_mul.count,
                c.fp_mul.latency,
                c.fp_div.count,
                c.fp_div.latency
            ),
        ],
        vec![
            "Memory ports".into(),
            format!("{} load, {} store", c.load_ports.count, c.store_ports.count),
        ],
        vec![
            "Branch predictor".into(),
            format!(
            "gshare/bimodal hybrid ({}-bit history, {}K entries), {}-entry indirect, {}-entry RAS",
            c.branch.gshare_history_bits,
            (1u64 << c.branch.gshare_table_bits) / 1024,
            c.branch.indirect_entries,
            c.branch.ras_entries
        ),
        ],
        vec!["L1I".into(), cache(c.l1i)],
        vec!["L1D".into(), cache(c.l1d)],
        vec!["L2".into(), cache(c.l2)],
        vec!["LLC (per-core share)".into(), cache(c.llc)],
        vec![
            "ITLB / DTLB".into(),
            format!(
                "{} / {} entries, {}-cycle walk",
                c.itlb.entries, c.dtlb.entries, c.itlb.walk_latency
            ),
        ],
        vec![
            "DRAM".into(),
            format!(
                "{} cycles latency, 1 line per {} cycles (per-core bandwidth share)",
                c.dram.latency, c.dram.cycles_per_line
            ),
        ],
        vec![
            "Wrong-path budget".into(),
            format!(
                "{} instructions per misprediction (ROB + frontend)",
                c.wrong_path_budget()
            ),
        ],
        vec![
            "Frontend queue".into(),
            format!("{} instructions of functional runahead", c.queue_depth),
        ],
    ];
    println!("TABLE I: simulated core configuration (Golden Cove-like)\n");
    println!("{}", render_table(&["structure", "configuration"], &rows));
}
