//! **Figure 4 (left)** — error of the wrong-path modeling techniques on
//! the GAP benchmarks.
//!
//! Paper result: instruction reconstruction barely moves the error (GAP
//! has a small instruction footprint); convergence exploitation cuts the
//! average error from 9.6% to 3.8%, flipping `bc` slightly positive
//! (conv models only the positive interference).
//!
//! The 24 simulations (6 kernels × 4 techniques) run as one supervised
//! campaign: in parallel across the worker pool, each with panic
//! isolation and a watchdog deadline.
//!
//! `--techniques <label,...>` restricts the displayed columns to a subset
//! of the registered techniques. Full wrong-path emulation is the error
//! reference, so it always runs even when filtered out of the table.

use ffsim_bench::{
    expect_sim, gap_suite, mean_abs, render_table, run_supervised, techniques_from_args,
    workload_fn, GAP_MAX_INSTRUCTIONS,
};
use ffsim_core::WrongPathMode;
use ffsim_driver::Job;
use ffsim_uarch::CoreConfig;

fn main() {
    let techniques = techniques_from_args().unwrap_or_else(|e| {
        eprintln!("fig4_gap_techniques: {e}");
        std::process::exit(2);
    });
    let mut run_modes = techniques.clone();
    if !run_modes.contains(&WrongPathMode::WrongPathEmulation) {
        run_modes.push(WrongPathMode::WrongPathEmulation);
    }
    let report_modes: Vec<WrongPathMode> = techniques
        .iter()
        .copied()
        .filter(|&m| m != WrongPathMode::WrongPathEmulation)
        .collect();

    let core = CoreConfig::golden_cove_like();
    let suite = gap_suite();

    let jobs = suite
        .iter()
        .flat_map(|w| {
            let workload = workload_fn(w);
            let core = core.clone();
            run_modes.iter().map(move |&mode| {
                Job::new(format!("{}/{mode}", w.name()), mode, workload.clone())
                    .with_core(core.clone())
                    .with_max_instructions(GAP_MAX_INSTRUCTIONS)
                    .no_degradation()
            })
        })
        .collect();
    let records = run_supervised(jobs);

    let mut rows = Vec::new();
    let mut errs: Vec<Vec<f64>> = vec![Vec::new(); report_modes.len()];
    println!("FIGURE 4 (left): error per wrong-path technique (GAP)\n");
    for w in &suite {
        let result = |mode: WrongPathMode| expect_sim(&records, &format!("{}/{mode}", w.name()));
        let wpemul = result(WrongPathMode::WrongPathEmulation);
        let mut row = vec![w.name().to_string()];
        for (i, &mode) in report_modes.iter().enumerate() {
            let e = result(mode).error_vs(wpemul);
            errs[i].push(e);
            row.push(format!("{e:+.1}%"));
        }
        rows.push(row);
    }
    let mut headers = vec!["benchmark"];
    headers.extend(report_modes.iter().map(|m| m.label()));
    println!("{}", render_table(&headers, &rows));
    let summary: Vec<String> = report_modes
        .iter()
        .zip(&errs)
        .map(|(m, e)| format!("{} {:.1}%", m.label(), mean_abs(e)))
        .collect();
    println!("average |error|: {}", summary.join("  "));
    println!("paper: 9.6% -> 9.7% -> 3.8% (conv cuts GAP error ~2.5x; instrec no help)");
}
