//! **Figure 4 (left)** — error of the wrong-path modeling techniques on
//! the GAP benchmarks.
//!
//! Paper result: instruction reconstruction barely moves the error (GAP
//! has a small instruction footprint); convergence exploitation cuts the
//! average error from 9.6% to 3.8%, flipping `bc` slightly positive
//! (conv models only the positive interference).

use ffsim_bench::{gap_suite, mean_abs, render_table, run_modes, GAP_MAX_INSTRUCTIONS};
use ffsim_uarch::CoreConfig;

fn main() {
    let core = CoreConfig::golden_cove_like();
    let mut rows = Vec::new();
    let mut nowp_errs = Vec::new();
    let mut instrec_errs = Vec::new();
    let mut conv_errs = Vec::new();
    println!("FIGURE 4 (left): error per wrong-path technique (GAP)\n");
    for w in gap_suite() {
        let [nowp, instrec, conv, wpemul] = run_modes(&w, &core, GAP_MAX_INSTRUCTIONS);
        let (e0, e1, e2) = (
            nowp.error_vs(&wpemul),
            instrec.error_vs(&wpemul),
            conv.error_vs(&wpemul),
        );
        nowp_errs.push(e0);
        instrec_errs.push(e1);
        conv_errs.push(e2);
        rows.push(vec![
            w.name().to_string(),
            format!("{e0:+.1}%"),
            format!("{e1:+.1}%"),
            format!("{e2:+.1}%"),
        ]);
    }
    println!(
        "{}",
        render_table(&["benchmark", "nowp", "instrec", "conv"], &rows)
    );
    println!(
        "average |error|: nowp {:.1}%  instrec {:.1}%  conv {:.1}%",
        mean_abs(&nowp_errs),
        mean_abs(&instrec_errs),
        mean_abs(&conv_errs)
    );
    println!("paper: 9.6% -> 9.7% -> 3.8% (conv cuts GAP error ~2.5x; instrec no help)");
}
