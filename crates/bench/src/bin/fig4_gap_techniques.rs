//! **Figure 4 (left)** — error of the wrong-path modeling techniques on
//! the GAP benchmarks.
//!
//! Paper result: instruction reconstruction barely moves the error (GAP
//! has a small instruction footprint); convergence exploitation cuts the
//! average error from 9.6% to 3.8%, flipping `bc` slightly positive
//! (conv models only the positive interference).
//!
//! The 24 simulations (6 kernels × 4 techniques) run as one supervised
//! campaign: in parallel across the worker pool, each with panic
//! isolation and a watchdog deadline.

use ffsim_bench::{
    expect_sim, gap_suite, mean_abs, render_table, run_supervised, workload_fn,
    GAP_MAX_INSTRUCTIONS,
};
use ffsim_core::WrongPathMode;
use ffsim_driver::Job;
use ffsim_uarch::CoreConfig;

fn main() {
    let core = CoreConfig::golden_cove_like();
    let suite = gap_suite();

    let jobs = suite
        .iter()
        .flat_map(|w| {
            let workload = workload_fn(w);
            WrongPathMode::ALL.map(|mode| {
                Job::new(format!("{}/{mode}", w.name()), mode, workload.clone())
                    .with_core(core.clone())
                    .with_max_instructions(GAP_MAX_INSTRUCTIONS)
                    .no_degradation()
            })
        })
        .collect();
    let records = run_supervised(jobs);

    let mut rows = Vec::new();
    let mut nowp_errs = Vec::new();
    let mut instrec_errs = Vec::new();
    let mut conv_errs = Vec::new();
    println!("FIGURE 4 (left): error per wrong-path technique (GAP)\n");
    for w in &suite {
        let result = |mode: WrongPathMode| expect_sim(&records, &format!("{}/{mode}", w.name()));
        let wpemul = result(WrongPathMode::WrongPathEmulation);
        let (e0, e1, e2) = (
            result(WrongPathMode::NoWrongPath).error_vs(wpemul),
            result(WrongPathMode::InstructionReconstruction).error_vs(wpemul),
            result(WrongPathMode::ConvergenceExploitation).error_vs(wpemul),
        );
        nowp_errs.push(e0);
        instrec_errs.push(e1);
        conv_errs.push(e2);
        rows.push(vec![
            w.name().to_string(),
            format!("{e0:+.1}%"),
            format!("{e1:+.1}%"),
            format!("{e2:+.1}%"),
        ]);
    }
    println!(
        "{}",
        render_table(&["benchmark", "nowp", "instrec", "conv"], &rows)
    );
    println!(
        "average |error|: nowp {:.1}%  instrec {:.1}%  conv {:.1}%",
        mean_abs(&nowp_errs),
        mean_abs(&instrec_errs),
        mean_abs(&conv_errs)
    );
    println!("paper: 9.6% -> 9.7% -> 3.8% (conv cuts GAP error ~2.5x; instrec no help)");
}
