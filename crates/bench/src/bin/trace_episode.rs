//! Observability smoke tool: dump a Chrome `trace_event` JSON of
//! wrong-path episodes and cross-check every observability invariant.
//!
//! ```text
//! trace_episode --check            # all modes: CPI sums, observer effect,
//!                                  # trace parse, histogram consistency,
//!                                  # nowp-vs-wpemul CPI decomposition
//! trace_episode --out trace.json   # Chrome trace of a small wpemul run
//!                                  # (load into chrome://tracing or Perfetto)
//! ```
//!
//! `--check` exits non-zero on the first violated invariant, so CI can run
//! it directly. The decomposition table it prints is the worked example in
//! `EXPERIMENTS.md`: which stall class absorbs the IPC gap between
//! `nowp` and `wpemul`.

use ffsim_core::{ObsConfig, SimConfig, SimResult, Simulator, WrongPathMode};
use ffsim_obs::{chrome_trace, json, ALL_CLASSES};
use ffsim_uarch::CoreConfig;
use ffsim_workloads::{gap, Workload};
use std::path::PathBuf;
use std::process::ExitCode;

/// Small BFS instance: branchy, memory-bound, finishes in well under a
/// second, and its wrong paths prefetch for the correct path — the paper's
/// headline effect, so the nowp-vs-wpemul decomposition is visible.
fn workload() -> Workload {
    let mut suite = gap::all_gap(10, 8, 42);
    suite.remove(1) // bfs
}

const MAX_INSTRUCTIONS: u64 = 400_000;

fn run(w: &Workload, mode: WrongPathMode, obs: ObsConfig) -> Result<SimResult, String> {
    let mut cfg = SimConfig::with_core(CoreConfig::golden_cove_like(), mode);
    cfg.max_instructions = Some(MAX_INSTRUCTIONS);
    cfg.obs = obs;
    Simulator::new(w.program().clone(), w.memory().clone(), cfg)
        .and_then(Simulator::run)
        .map_err(|e| format!("{mode}: {e}"))
}

fn ensure(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!("invariant violated: {what}"))
    }
}

/// All observability invariants, across every wrong-path mode.
fn check() -> Result<(), String> {
    let w = workload();
    let mut by_mode = Vec::new();
    for mode in WrongPathMode::ALL {
        let quiet = run(&w, mode, ObsConfig::disabled())?;
        let observed = run(&w, mode, ObsConfig::enabled())?;

        // Observer effect: tracing must not move the simulation.
        ensure(quiet.cycles == observed.cycles, "cycles differ with obs on")?;
        ensure(
            quiet.instructions == observed.instructions,
            "instructions differ with obs on",
        )?;
        ensure(
            quiet.state_digest == observed.state_digest,
            "state digest differs with obs on",
        )?;

        // CPI accounting: components sum exactly to total cycles.
        ensure(
            quiet.cpi.total() == quiet.cycles,
            "CPI components do not sum to cycles (obs off)",
        )?;
        ensure(
            observed.cpi.total() == observed.cycles,
            "CPI components do not sum to cycles (obs on)",
        )?;
        ensure(quiet.obs.is_none(), "disabled run allocated an ObsReport")?;

        let obs = observed
            .obs
            .as_ref()
            .ok_or("enabled run produced no ObsReport")?;

        // The Chrome export round-trips through the JSON parser.
        let text = chrome_trace(&obs.events).to_json();
        let parsed = json::parse(&text).map_err(|e| format!("trace does not parse: {e}"))?;
        let events = parsed
            .get("traceEvents")
            .and_then(json::Value::as_arr)
            .ok_or("trace has no traceEvents array")?;
        ensure(
            events.len() == obs.events.len(),
            "exported event count differs from the ring",
        )?;

        // Histogram consistency: one episode-length sample per handled
        // misprediction, and no samples lost.
        let mispredicts = observed.branch.mispredicts();
        ensure(
            obs.wp_episode_len.count() == mispredicts,
            "episode histogram count != mispredictions",
        )?;
        ensure(
            obs.wp_episode_len.sum() == observed.wrong_path_instructions,
            "episode histogram sum != injected wrong-path instructions",
        )?;

        println!(
            "{mode}: ok ({} cycles, {} events, {} episodes)",
            observed.cycles,
            obs.events.len(),
            obs.wp_episode_len.count()
        );
        by_mode.push(observed);
    }

    // The worked example: decompose the nowp-vs-wpemul IPC gap by stall
    // class (paper Fig. 1 explained cycle by cycle).
    let (nowp, wpemul) = (&by_mode[0], &by_mode[3]);
    println!(
        "\nCPI decomposition, {} ({} instructions):",
        w.name(),
        nowp.instructions
    );
    println!(
        "{:>18}  {:>12} {:>8}  {:>12} {:>8}  {:>9}",
        "stall class", "nowp cyc", "cpi", "wpemul cyc", "cpi", "delta cyc"
    );
    for class in ALL_CLASSES {
        let a = nowp.cpi.get(class);
        let b = wpemul.cpi.get(class);
        if a == 0 && b == 0 {
            continue;
        }
        println!(
            "{:>18}  {:>12} {:>8.4}  {:>12} {:>8.4}  {:>+9}",
            class.label(),
            a,
            a as f64 / nowp.instructions as f64,
            b,
            b as f64 / wpemul.instructions as f64,
            b as i64 - a as i64,
        );
    }
    println!(
        "{:>18}  {:>12} {:>8.4}  {:>12} {:>8.4}  {:>+9}",
        "total",
        nowp.cycles,
        1.0 / nowp.ipc(),
        wpemul.cycles,
        1.0 / wpemul.ipc(),
        wpemul.cycles as i64 - nowp.cycles as i64,
    );
    println!(
        "ipc {:.4} -> {:.4}, nowp error vs wpemul: {:+.2}%",
        nowp.ipc(),
        wpemul.ipc(),
        nowp.error_vs(wpemul)
    );
    Ok(())
}

/// Writes a Chrome trace of a wrong-path-emulation run to `path`.
fn dump(path: &PathBuf) -> Result<(), String> {
    let w = workload();
    let result = run(&w, WrongPathMode::WrongPathEmulation, ObsConfig::enabled())?;
    let obs = result.obs.as_ref().ok_or("run produced no ObsReport")?;
    let text = chrome_trace(&obs.events).to_json();
    std::fs::write(path, &text).map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!(
        "wrote {} events to {} ({} dropped from the bounded ring)",
        obs.events.len(),
        path.display(),
        obs.dropped_events
    );
    println!("episode lengths: {}", obs.wp_episode_len.summary());
    Ok(())
}

fn main() -> ExitCode {
    let mut check_flag = false;
    let mut out = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--check" => check_flag = true,
            "--out" => match argv.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("trace_episode: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("trace_episode: unknown argument: {other}");
                eprintln!("usage: trace_episode [--check] [--out PATH]");
                return ExitCode::FAILURE;
            }
        }
    }
    if !check_flag && out.is_none() {
        eprintln!("usage: trace_episode [--check] [--out PATH]");
        return ExitCode::FAILURE;
    }
    if check_flag {
        if let Err(e) = check() {
            eprintln!("trace_episode: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &out {
        if let Err(e) = dump(path) {
            eprintln!("trace_episode: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
