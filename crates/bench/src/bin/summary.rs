//! **Reproduction scorecard** — runs a reduced version of every
//! experiment and checks each of the paper's qualitative claims
//! automatically. The fast way to see whether a change to the simulator
//! still reproduces the paper.
//!
//! Scales are reduced relative to the per-figure binaries (scale-12
//! graphs, 1M instructions), so the whole scorecard runs in about a
//! minute.

use ffsim_bench::{mean, mean_abs, run_modes};
use ffsim_core::SimResult;
use ffsim_uarch::{CoreConfig, PathKind};
use ffsim_workloads::speclike::{all_speclike, SpecCategory};
use ffsim_workloads::{gap, Workload};

struct Scorecard {
    passed: u32,
    failed: u32,
}

impl Scorecard {
    fn check(&mut self, claim: &str, ok: bool, detail: String) {
        let mark = if ok { "PASS" } else { "FAIL" };
        if ok {
            self.passed += 1;
        } else {
            self.failed += 1;
        }
        println!("[{mark}] {claim}\n       {detail}");
    }
}

fn main() {
    let core = CoreConfig::golden_cove_like();
    let max = 1_000_000;
    let mut card = Scorecard {
        passed: 0,
        failed: 0,
    };

    println!("running GAP suite (scale 12)...");
    let gap_suite: Vec<Workload> = gap::all_gap(12, 16, 42);
    let gap_results: Vec<[SimResult; 4]> =
        gap_suite.iter().map(|w| run_modes(w, &core, max)).collect();

    // Claim 1 (Fig. 1): all GAP nowp errors <= 0.
    let nowp_errs: Vec<f64> = gap_results.iter().map(|r| r[0].error_vs(&r[3])).collect();
    card.check(
        "Fig. 1: no-wrong-path modeling underestimates GAP performance everywhere",
        nowp_errs.iter().all(|&e| e <= 0.5),
        format!(
            "errors: {:?}",
            nowp_errs
                .iter()
                .map(|e| format!("{e:+.1}%"))
                .collect::<Vec<_>>()
        ),
    );

    // Claim 2 (Fig. 1): pr and tc are the least sensitive kernels.
    let by_name: Vec<(&str, f64)> = gap_suite
        .iter()
        .map(Workload::name)
        .zip(nowp_errs.iter().map(|e| e.abs()))
        .collect();
    let max_insensitive = by_name
        .iter()
        .filter(|(n, _)| matches!(*n, "pr" | "tc"))
        .map(|(_, e)| *e)
        .fold(0.0f64, f64::max);
    let min_sensitive = by_name
        .iter()
        .filter(|(n, _)| matches!(*n, "bc" | "sssp"))
        .map(|(_, e)| *e)
        .fold(f64::INFINITY, f64::min);
    card.check(
        "Fig. 1: pr/tc least affected, bc/sssp most affected",
        max_insensitive < min_sensitive,
        format!("max(pr,tc) {max_insensitive:.1}% < min(bc,sssp) {min_sensitive:.1}%"),
    );

    // Claim 3 (Fig. 4 left): instrec ~ nowp on GAP; conv cuts the average.
    let instrec_avg = mean_abs(
        &gap_results
            .iter()
            .map(|r| r[1].error_vs(&r[3]))
            .collect::<Vec<_>>(),
    );
    let conv_avg = mean_abs(
        &gap_results
            .iter()
            .map(|r| r[2].error_vs(&r[3]))
            .collect::<Vec<_>>(),
    );
    let nowp_avg = mean_abs(&nowp_errs);
    card.check(
        "Fig. 4: instrec does not help GAP; conv cuts the average error >=1.5x",
        (instrec_avg - nowp_avg).abs() < 1.5 && conv_avg < nowp_avg / 1.5,
        format!(
            "avg |error| nowp {nowp_avg:.1}% -> instrec {instrec_avg:.1}% -> conv {conv_avg:.1}%"
        ),
    );

    // Claim 4 (Table II): wrong-path instruction count ordering.
    let ordering_holds = gap_results
        .iter()
        .filter(|r| {
            r[1].wrong_path_fraction() >= r[2].wrong_path_fraction() * 0.98
                && r[2].wrong_path_fraction() >= r[3].wrong_path_fraction() * 0.98
        })
        .count();
    card.check(
        "Table II: instrec >= conv >= wpemul wrong-path instruction counts",
        ordering_holds >= 5,
        format!("ordering holds on {ordering_holds}/6 kernels"),
    );

    // Claim 5 (Table III): graph code converges quickly.
    let conv_fracs: Vec<f64> = gap_results
        .iter()
        .map(|r| r[2].convergence.conv_frac())
        .collect();
    let dists: Vec<f64> = gap_results
        .iter()
        .map(|r| r[2].convergence.avg_distance())
        .collect();
    card.check(
        "Table III: convergence found for most misses, within tens of instructions",
        conv_fracs.iter().all(|&f| f > 0.6) && dists.iter().all(|&d| d < 40.0),
        format!(
            "conv frac {:.0}-{:.0}%, dist {:.1}-{:.1}",
            conv_fracs.iter().fold(f64::INFINITY, |a, &b| a.min(b)) * 100.0,
            conv_fracs.iter().fold(0.0f64, |a, &b| a.max(b)) * 100.0,
            dists.iter().fold(f64::INFINITY, |a, &b| a.min(b)),
            dists.iter().fold(0.0f64, |a, &b| a.max(b))
        ),
    );

    // Claim 6: the prefetch mechanism — wpemul lowers correct-path L2
    // misses vs nowp on converging kernels.
    let prefetch_wins = gap_results
        .iter()
        .filter(|r| r[3].l2.misses.get(PathKind::Correct) < r[0].l2.misses.get(PathKind::Correct))
        .count();
    card.check(
        "mechanism: wrong-path execution prefetches for the correct path",
        prefetch_wins >= 4,
        format!("correct-path L2 misses drop on {prefetch_wins}/6 kernels"),
    );

    println!("\nrunning SPEC-like suite (reduced)...");
    let spec = all_speclike(1, 2026);
    let mut fp_errs = Vec::new();
    let mut int_nowp = Vec::new();
    let mut int_conv = Vec::new();
    for k in &spec {
        let r = run_modes(&k.workload, &core, 600_000);
        match k.category {
            SpecCategory::Fp => fp_errs.push(r[0].error_vs(&r[3])),
            SpecCategory::Int => {
                int_nowp.push(r[0].error_vs(&r[3]));
                int_conv.push(r[2].error_vs(&r[3]));
            }
        }
    }

    // Claim 7 (Fig. 4 right): FP insensitive.
    card.check(
        "Fig. 4: FP kernels are insensitive to wrong-path modeling",
        fp_errs.iter().all(|e| e.abs() < 1.0),
        format!(
            "max FP |error| {:.2}%",
            fp_errs.iter().fold(0.0f64, |a, &b| a.max(b.abs()))
        ),
    );

    // Claim 8 (Fig. 4 right): INT negatively skewed; conv narrows it.
    card.check(
        "Fig. 4: INT errors negatively skewed; conv reduces the average",
        mean(&int_nowp) < -1.0 && mean_abs(&int_conv) < mean_abs(&int_nowp),
        format!(
            "INT mean {:.1}% (|avg| {:.1}%) -> conv |avg| {:.1}%",
            mean(&int_nowp),
            mean_abs(&int_nowp),
            mean_abs(&int_conv)
        ),
    );

    println!(
        "\nscorecard: {} passed, {} failed",
        card.passed, card.failed
    );
    if card.failed > 0 {
        std::process::exit(1);
    }
}
