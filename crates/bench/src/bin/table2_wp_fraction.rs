//! **Table II** — wrong-path instructions executed by each technique,
//! relative to the correct-path instruction count (GAP).
//!
//! Paper result: up to 240% (2.4× more wrong-path than correct-path
//! instructions); `pr` lowest. Counter-intuitively, instruction
//! reconstruction executes *more* wrong-path instructions than
//! convergence exploitation, which executes more than emulation: instrec
//! models every wrong-path memory access as a cache hit, so the wrong
//! path runs ahead faster during the (identical) branch resolution time.
//!
//! `--techniques <label,...>` restricts the table to a subset of the
//! registered techniques (`nowp` executes no wrong path, so it never has
//! a column). Only the selected simulations run.

use ffsim_bench::{gap_suite, render_table, run_mode, techniques_from_args, GAP_MAX_INSTRUCTIONS};
use ffsim_core::WrongPathMode;
use ffsim_uarch::CoreConfig;

fn main() {
    let techniques = techniques_from_args().unwrap_or_else(|e| {
        eprintln!("table2_wp_fraction: {e}");
        std::process::exit(2);
    });
    let report_modes: Vec<WrongPathMode> = techniques
        .iter()
        .copied()
        .filter(|&m| m != WrongPathMode::NoWrongPath)
        .collect();
    // The instrec >= conv >= wpemul ordering is only checkable when all
    // three wrong-path techniques are in the run.
    let check_ordering = report_modes.len() == 3;

    let core = CoreConfig::golden_cove_like();
    let mut rows = Vec::new();
    println!("TABLE II: wrong-path instructions relative to correct path (GAP)\n");
    let mut orderings_hold = 0;
    let mut total = 0;
    for w in gap_suite() {
        let fractions: Vec<f64> = report_modes
            .iter()
            .map(|&mode| run_mode(&w, &core, mode, GAP_MAX_INSTRUCTIONS).wrong_path_fraction())
            .collect();
        if check_ordering && fractions.windows(2).all(|p| p[0] >= p[1]) {
            orderings_hold += 1;
        }
        total += 1;
        let mut row = vec![w.name().to_string()];
        row.extend(fractions.iter().map(|f| format!("{f:.0}%")));
        rows.push(row);
    }
    let mut headers = vec!["benchmark"];
    headers.extend(report_modes.iter().map(|m| m.label()));
    println!("{}", render_table(&headers, &rows));
    if check_ordering {
        println!("instrec >= conv >= wpemul ordering holds on {orderings_hold}/{total} benchmarks");
    }
    println!("paper: 26-240%, ordering instrec > conv > wpemul, pr lowest");
}
