//! **Table II** — wrong-path instructions executed by each technique,
//! relative to the correct-path instruction count (GAP).
//!
//! Paper result: up to 240% (2.4× more wrong-path than correct-path
//! instructions); `pr` lowest. Counter-intuitively, instruction
//! reconstruction executes *more* wrong-path instructions than
//! convergence exploitation, which executes more than emulation: instrec
//! models every wrong-path memory access as a cache hit, so the wrong
//! path runs ahead faster during the (identical) branch resolution time.

use ffsim_bench::{gap_suite, render_table, run_modes, GAP_MAX_INSTRUCTIONS};
use ffsim_uarch::CoreConfig;

fn main() {
    let core = CoreConfig::golden_cove_like();
    let mut rows = Vec::new();
    println!("TABLE II: wrong-path instructions relative to correct path (GAP)\n");
    let mut orderings_hold = 0;
    let mut total = 0;
    for w in gap_suite() {
        let [_, instrec, conv, wpemul] = run_modes(&w, &core, GAP_MAX_INSTRUCTIONS);
        let (fi, fc, fe) = (
            instrec.wrong_path_fraction(),
            conv.wrong_path_fraction(),
            wpemul.wrong_path_fraction(),
        );
        if fi >= fc && fc >= fe {
            orderings_hold += 1;
        }
        total += 1;
        rows.push(vec![
            w.name().to_string(),
            format!("{fi:.0}%"),
            format!("{fc:.0}%"),
            format!("{fe:.0}%"),
        ]);
    }
    println!(
        "{}",
        render_table(&["benchmark", "instrec", "conv", "wpemul"], &rows)
    );
    println!("instrec >= conv >= wpemul ordering holds on {orderings_hold}/{total} benchmarks");
    println!("paper: 26-240%, ordering instrec > conv > wpemul, pr lowest");
}
