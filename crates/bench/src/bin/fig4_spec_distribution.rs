//! **Figure 4 (right)** — error distributions of the wrong-path modeling
//! techniques on the SPEC-like suite, split INT vs FP.
//!
//! Paper result: FP benchmarks sit at ≈0% under every technique; INT
//! errors are negatively skewed without wrong-path modeling, instruction
//! reconstruction fixes the icache-pressure cases (gcc), and convergence
//! exploitation narrows the distribution around 0% (INT average
//! 1.97% → 0.49%), with one benchmark (xz) overshooting positive.

use ffsim_bench::{
    mean_abs, render_histogram, render_table, run_modes, spec_suite, SPEC_MAX_INSTRUCTIONS,
};
use ffsim_core::WrongPathMode;
use ffsim_uarch::CoreConfig;
use ffsim_workloads::speclike::SpecCategory;

fn main() {
    let core = CoreConfig::golden_cove_like();
    let mut per_mode: [Vec<(String, f64)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut int_errs: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut fp_errs: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut rows = Vec::new();

    println!("FIGURE 4 (right): error distribution per technique (SPEC-like suite)\n");
    for k in spec_suite() {
        let [nowp, instrec, conv, wpemul] = run_modes(&k.workload, &core, SPEC_MAX_INSTRUCTIONS);
        let errs = [
            nowp.error_vs(&wpemul),
            instrec.error_vs(&wpemul),
            conv.error_vs(&wpemul),
        ];
        let tag = match k.category {
            SpecCategory::Int => "INT",
            SpecCategory::Fp => "FP",
        };
        let name = format!("{}:{}", tag, k.workload.name());
        for (m, &e) in errs.iter().enumerate() {
            per_mode[m].push((name.clone(), e));
            match k.category {
                SpecCategory::Int => int_errs[m].push(e),
                SpecCategory::Fp => fp_errs[m].push(e),
            }
        }
        rows.push(vec![
            name,
            format!("{:+.2}%", errs[0]),
            format!("{:+.2}%", errs[1]),
            format!("{:+.2}%", errs[2]),
        ]);
    }

    println!(
        "{}",
        render_table(&["benchmark", "nowp", "instrec", "conv"], &rows)
    );

    let edges = [-60.0, -30.0, -15.0, -5.0, -0.5, 0.5, 5.0, 15.0, 30.0, 60.0];
    for (m, label) in [
        WrongPathMode::NoWrongPath,
        WrongPathMode::InstructionReconstruction,
        WrongPathMode::ConvergenceExploitation,
    ]
    .iter()
    .enumerate()
    {
        println!("--- {} error distribution ---", label.label());
        println!("{}", render_histogram(&per_mode[m], &edges));
    }

    for (m, label) in ["nowp", "instrec", "conv"].iter().enumerate() {
        println!(
            "{label:8} avg |error|: INT {:.2}%  FP {:.2}%",
            mean_abs(&int_errs[m]),
            mean_abs(&fp_errs[m])
        );
    }
    println!("\npaper: INT 1.97% -> ~2% -> 0.49%; FP ~0.2% under all techniques");
}
