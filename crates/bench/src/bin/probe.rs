//! Calibration probe: SPEC-like suite across the four modes.
use ffsim_core::run_all_modes;
use ffsim_uarch::CoreConfig;
use ffsim_workloads::speclike::{all_speclike, SpecCategory};

fn main() {
    let core = CoreConfig::golden_cove_like();
    for k in all_speclike(1, 2026) {
        let w = &k.workload;
        let results = run_all_modes(w.program(), w.memory(), &core, Some(1_500_000))
            .expect("probe workload faulted");
        let wpemul = results[3].clone();
        println!(
            "{:4} {:16} nowp {:+6.2}% instrec {:+6.2}% conv {:+6.2}% | bmpki {:5.2} l2mpki {:5.2} l1i-mpki {:5.2} | n={}k",
            if k.category == SpecCategory::Int { "INT" } else { "FP" },
            w.name(),
            results[0].error_vs(&wpemul),
            results[1].error_vs(&wpemul),
            results[2].error_vs(&wpemul),
            results[3].branch_mpki(),
            results[3].l2_mpki(),
            results[3].l1i.misses.get(ffsim_uarch::PathKind::Correct) as f64 * 1000.0 / results[3].instructions as f64,
            results[3].instructions / 1000,
        );
    }
}
