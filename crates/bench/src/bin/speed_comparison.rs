//! **§V-B** — simulation speed of the four techniques, normalized to the
//! no-wrong-path model (host wall-clock time).
//!
//! Paper result: SPEC slowdowns 1.12× (instrec), 1.13× (conv), 2.1×
//! (wpemul, up to 16.2×); branch-miss-heavy GAP slowdowns 3.2×, 4.0×,
//! and 13.1× (up to 157×). The reconstruction techniques burden only the
//! performance simulator; emulation burdens the functional simulator.
//!
//! `--techniques <label,...>` restricts the slowdown columns to a subset
//! of the registered techniques. The no-wrong-path model is the
//! normalization baseline, so it always runs even when filtered out.

use ffsim_bench::{
    gap_suite, mean, render_table, run_mode, spec_suite, techniques_from_args,
    GAP_MAX_INSTRUCTIONS, SPEC_MAX_INSTRUCTIONS,
};
use ffsim_core::WrongPathMode;
use ffsim_uarch::CoreConfig;
use ffsim_workloads::Workload;

fn report(label: &str, modes: &[WrongPathMode], workloads: &[&Workload], max_instructions: u64) {
    let core = CoreConfig::golden_cove_like();
    let mut rows = Vec::new();
    let mut slow: Vec<Vec<f64>> = vec![Vec::new(); modes.len()];
    let mut max_slow = vec![0.0f64; modes.len()];
    for w in workloads {
        let nowp = run_mode(w, &core, WrongPathMode::NoWrongPath, max_instructions);
        let mut row = vec![w.name().to_string()];
        for (i, &mode) in modes.iter().enumerate() {
            let s = run_mode(w, &core, mode, max_instructions).slowdown_vs(&nowp);
            slow[i].push(s);
            max_slow[i] = max_slow[i].max(s);
            row.push(format!("{s:.2}x"));
        }
        row.push(format!("{:.1}ms", nowp.wall_time.as_secs_f64() * 1000.0));
        rows.push(row);
    }
    println!("--- {label} ---");
    let mut headers = vec!["benchmark"];
    headers.extend(modes.iter().map(|m| m.label()));
    headers.push("nowp time");
    println!("{}", render_table(&headers, &rows));
    let summary: Vec<String> = modes
        .iter()
        .enumerate()
        .map(|(i, m)| {
            format!(
                "{} {:.2}x (max {:.2}x)",
                m.label(),
                mean(&slow[i]),
                max_slow[i]
            )
        })
        .collect();
    println!("average slowdown: {}\n", summary.join(", "));
}

fn main() {
    let techniques = techniques_from_args().unwrap_or_else(|e| {
        eprintln!("speed_comparison: {e}");
        std::process::exit(2);
    });
    let modes: Vec<WrongPathMode> = techniques
        .iter()
        .copied()
        .filter(|&m| m != WrongPathMode::NoWrongPath)
        .collect();

    println!("SECTION V-B: simulation speed, normalized to the nowp model\n");
    let gap = gap_suite();
    report(
        "GAP (branch-miss heavy)",
        &modes,
        &gap.iter().collect::<Vec<_>>(),
        GAP_MAX_INSTRUCTIONS,
    );
    let spec = spec_suite();
    let spec_workloads: Vec<&Workload> = spec.iter().map(|k| &k.workload).collect();
    report("SPEC-like", &modes, &spec_workloads, SPEC_MAX_INSTRUCTIONS);
    println!("paper: SPEC 1.12x / 1.13x / 2.1x;  GAP 3.2x / 4.0x / 13.1x");
    println!("(absolute host ratios differ — our in-process emulator makes wrong-path");
    println!("emulation far cheaper than Pin checkpoint/inject — but the ordering");
    println!("nowp < instrec <= conv < wpemul and the GAP >> SPEC overhead gap hold)");
}
