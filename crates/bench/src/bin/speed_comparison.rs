//! **§V-B** — simulation speed of the four techniques, normalized to the
//! no-wrong-path model (host wall-clock time).
//!
//! Paper result: SPEC slowdowns 1.12× (instrec), 1.13× (conv), 2.1×
//! (wpemul, up to 16.2×); branch-miss-heavy GAP slowdowns 3.2×, 4.0×,
//! and 13.1× (up to 157×). The reconstruction techniques burden only the
//! performance simulator; emulation burdens the functional simulator.
//!
//! `--techniques <label,...>` restricts the slowdown columns to a subset
//! of the registered techniques. The no-wrong-path model is the
//! normalization baseline, so it always runs even when filtered out.
//!
//! `--json PATH` additionally writes the measurements as
//! `BENCH_speed.json`: slowdowns as `slowdown_x100` scaled integers and
//! baselines as `nowp_us` microseconds (the report JSON dialect has no
//! floats). `results_check` validates the committed copy's schema.

use ffsim_bench::{
    gap_suite, mean, parse_techniques, render_table, run_mode, spec_suite, GAP_MAX_INSTRUCTIONS,
    SPEC_MAX_INSTRUCTIONS,
};
use ffsim_core::WrongPathMode;
use ffsim_obs::json::Value;
use ffsim_uarch::CoreConfig;
use ffsim_workloads::Workload;
use std::path::PathBuf;

/// `BENCH_speed.json` schema version; bump on structural change.
const JSON_VERSION: i64 = 1;

/// One benchmark's measurements: baseline wall-clock and per-technique
/// slowdown, both exact enough for the text report and the JSON artifact.
struct BenchRow {
    benchmark: String,
    nowp_us: i64,
    /// Parallel to the selected `modes`.
    slowdowns: Vec<f64>,
}

struct SuiteResult {
    suite: &'static str,
    rows: Vec<BenchRow>,
}

fn measure(
    modes: &[WrongPathMode],
    workloads: &[&Workload],
    max_instructions: u64,
    suite: &'static str,
) -> SuiteResult {
    let core = CoreConfig::golden_cove_like();
    let rows = workloads
        .iter()
        .map(|w| {
            let nowp = run_mode(w, &core, WrongPathMode::NoWrongPath, max_instructions);
            let slowdowns = modes
                .iter()
                .map(|&mode| run_mode(w, &core, mode, max_instructions).slowdown_vs(&nowp))
                .collect();
            BenchRow {
                benchmark: w.name().to_string(),
                nowp_us: i64::try_from(nowp.wall_time.as_micros()).unwrap_or(i64::MAX),
                slowdowns,
            }
        })
        .collect();
    SuiteResult { suite, rows }
}

fn report(label: &str, modes: &[WrongPathMode], result: &SuiteResult) {
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            let mut row = vec![r.benchmark.clone()];
            row.extend(r.slowdowns.iter().map(|s| format!("{s:.2}x")));
            row.push(format!("{:.1}ms", r.nowp_us as f64 / 1000.0));
            row
        })
        .collect();
    println!("--- {label} ---");
    let mut headers = vec!["benchmark"];
    headers.extend(modes.iter().map(|m| m.label()));
    headers.push("nowp time");
    println!("{}", render_table(&headers, &rows));
    let summary: Vec<String> = modes
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let slow: Vec<f64> = result.rows.iter().map(|r| r.slowdowns[i]).collect();
            let max = slow.iter().copied().fold(0.0f64, f64::max);
            format!("{} {:.2}x (max {max:.2}x)", m.label(), mean(&slow))
        })
        .collect();
    println!("average slowdown: {}\n", summary.join(", "));
}

fn x100(value: f64) -> i64 {
    (value * 100.0).round() as i64
}

fn suite_json(modes: &[WrongPathMode], result: &SuiteResult) -> Value {
    let benchmarks: Vec<Value> = result
        .rows
        .iter()
        .map(|r| {
            let slowdowns: Vec<Value> = modes
                .iter()
                .zip(&r.slowdowns)
                .map(|(m, &s)| {
                    Value::Obj(vec![
                        ("technique".into(), Value::Str(m.label().into())),
                        ("slowdown_x100".into(), Value::Int(x100(s))),
                    ])
                })
                .collect();
            Value::Obj(vec![
                ("benchmark".into(), Value::Str(r.benchmark.clone())),
                ("nowp_us".into(), Value::Int(r.nowp_us)),
                ("slowdowns".into(), Value::Arr(slowdowns)),
            ])
        })
        .collect();
    let summary: Vec<Value> = modes
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let slow: Vec<f64> = result.rows.iter().map(|r| r.slowdowns[i]).collect();
            let max = slow.iter().copied().fold(0.0f64, f64::max);
            Value::Obj(vec![
                ("technique".into(), Value::Str(m.label().into())),
                ("mean_slowdown_x100".into(), Value::Int(x100(mean(&slow)))),
                ("max_slowdown_x100".into(), Value::Int(x100(max))),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("suite".into(), Value::Str(result.suite.into())),
        ("benchmarks".into(), Value::Arr(benchmarks)),
        ("summary".into(), Value::Arr(summary)),
    ])
}

struct Args {
    modes: Vec<WrongPathMode>,
    benchmarks: Option<Vec<String>>,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut modes: Option<Vec<WrongPathMode>> = None;
    let mut benchmarks = None;
    let mut json = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--techniques" => {
                let spec = argv.next().ok_or("--techniques needs a value")?;
                modes = Some(parse_techniques(&spec)?);
            }
            "--benchmarks" => {
                let spec = argv.next().ok_or("--benchmarks needs a value")?;
                let names: Vec<String> = spec
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                if names.is_empty() {
                    return Err("--benchmarks needs at least one name".into());
                }
                benchmarks = Some(names);
            }
            "--json" => json = Some(PathBuf::from(argv.next().ok_or("--json needs a value")?)),
            other => {
                return Err(format!(
                    "unknown argument: {other} (supported: --techniques <label,...>, \
                     --benchmarks <name,...>, --json PATH)"
                ))
            }
        }
    }
    Ok(Args {
        modes: modes.unwrap_or_else(|| WrongPathMode::ALL.to_vec()),
        benchmarks,
        json,
    })
}

/// Applies the `--benchmarks` filter, erroring on names that match nothing
/// in either suite (catches typos before a long measurement run).
fn filter_workloads<'a>(
    workloads: Vec<&'a Workload>,
    filter: Option<&[String]>,
) -> Vec<&'a Workload> {
    match filter {
        None => workloads,
        Some(names) => workloads
            .into_iter()
            .filter(|w| names.iter().any(|n| n == w.name()))
            .collect(),
    }
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("speed_comparison: {e}");
        std::process::exit(2);
    });
    let modes: Vec<WrongPathMode> = args
        .modes
        .iter()
        .copied()
        .filter(|&m| m != WrongPathMode::NoWrongPath)
        .collect();

    println!("SECTION V-B: simulation speed, normalized to the nowp model\n");
    let filter = args.benchmarks.as_deref();
    let gap = gap_suite();
    let gap_workloads = filter_workloads(gap.iter().collect(), filter);
    let spec = spec_suite();
    let spec_workloads = filter_workloads(spec.iter().map(|k| &k.workload).collect(), filter);
    if let Some(names) = filter {
        let known = |n: &String| {
            gap_workloads
                .iter()
                .chain(&spec_workloads)
                .any(|w| w.name() == *n)
        };
        if let Some(bad) = names.iter().find(|n| !known(n)) {
            eprintln!("speed_comparison: unknown benchmark: {bad}");
            std::process::exit(2);
        }
    }
    let gap_result = measure(&modes, &gap_workloads, GAP_MAX_INSTRUCTIONS, "GAP");
    report("GAP (branch-miss heavy)", &modes, &gap_result);
    let spec_result = measure(&modes, &spec_workloads, SPEC_MAX_INSTRUCTIONS, "SPEC-like");
    report("SPEC-like", &modes, &spec_result);
    println!("paper: SPEC 1.12x / 1.13x / 2.1x;  GAP 3.2x / 4.0x / 13.1x");
    println!("(absolute host ratios differ — our in-process emulator makes wrong-path");
    println!("emulation far cheaper than Pin checkpoint/inject — but the ordering");
    println!("nowp < instrec <= conv < wpemul and the GAP >> SPEC overhead gap hold)");

    if let Some(path) = args.json {
        let doc = Value::Obj(vec![
            ("version".into(), Value::Int(JSON_VERSION)),
            (
                "suites".into(),
                Value::Arr(vec![
                    suite_json(&modes, &gap_result),
                    suite_json(&modes, &spec_result),
                ]),
            ),
        ]);
        if let Err(e) = std::fs::write(&path, doc.to_json()) {
            eprintln!("speed_comparison: writing {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("speed_comparison: wrote {}", path.display());
    }
}
