//! **§V-B** — simulation speed of the four techniques, normalized to the
//! no-wrong-path model (host wall-clock time).
//!
//! Paper result: SPEC slowdowns 1.12× (instrec), 1.13× (conv), 2.1×
//! (wpemul, up to 16.2×); branch-miss-heavy GAP slowdowns 3.2×, 4.0×,
//! and 13.1× (up to 157×). The reconstruction techniques burden only the
//! performance simulator; emulation burdens the functional simulator.

use ffsim_bench::{
    gap_suite, mean, render_table, run_modes, spec_suite, GAP_MAX_INSTRUCTIONS,
    SPEC_MAX_INSTRUCTIONS,
};
use ffsim_core::SimResult;
use ffsim_uarch::CoreConfig;
use ffsim_workloads::Workload;

fn report(label: &str, workloads: &[&Workload], max_instructions: u64) {
    let core = CoreConfig::golden_cove_like();
    let mut rows = Vec::new();
    let mut slow = [Vec::new(), Vec::new(), Vec::new()];
    let mut max_slow = [0.0f64; 3];
    for w in workloads {
        let results: [SimResult; 4] = run_modes(w, &core, max_instructions);
        let nowp = &results[0];
        let s: Vec<f64> = results[1..].iter().map(|r| r.slowdown_vs(nowp)).collect();
        for i in 0..3 {
            slow[i].push(s[i]);
            max_slow[i] = max_slow[i].max(s[i]);
        }
        rows.push(vec![
            w.name().to_string(),
            format!("{:.2}x", s[0]),
            format!("{:.2}x", s[1]),
            format!("{:.2}x", s[2]),
            format!("{:.1}ms", nowp.wall_time.as_secs_f64() * 1000.0),
        ]);
    }
    println!("--- {label} ---");
    println!(
        "{}",
        render_table(
            &["benchmark", "instrec", "conv", "wpemul", "nowp time"],
            &rows
        )
    );
    println!(
        "average slowdown: instrec {:.2}x (max {:.2}x), conv {:.2}x (max {:.2}x), wpemul {:.2}x (max {:.2}x)\n",
        mean(&slow[0]),
        max_slow[0],
        mean(&slow[1]),
        max_slow[1],
        mean(&slow[2]),
        max_slow[2],
    );
}

fn main() {
    println!("SECTION V-B: simulation speed, normalized to the nowp model\n");
    let gap = gap_suite();
    report(
        "GAP (branch-miss heavy)",
        &gap.iter().collect::<Vec<_>>(),
        GAP_MAX_INSTRUCTIONS,
    );
    let spec = spec_suite();
    let spec_workloads: Vec<&Workload> = spec.iter().map(|k| &k.workload).collect();
    report("SPEC-like", &spec_workloads, SPEC_MAX_INSTRUCTIONS);
    println!("paper: SPEC 1.12x / 1.13x / 2.1x;  GAP 3.2x / 4.0x / 13.1x");
    println!("(absolute host ratios differ — our in-process emulator makes wrong-path");
    println!("emulation far cheaper than Pin checkpoint/inject — but the ordering");
    println!("nowp < instrec <= conv < wpemul and the GAP >> SPEC overhead gap hold)");
}
