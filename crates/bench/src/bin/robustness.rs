//! **Robustness** — are the headline conclusions an artifact of one graph?
//!
//! Re-runs the Figure 1 / Figure 4 comparison (nowp and conv error vs
//! wrong-path emulation) on bfs and sssp across three RMAT seeds, a
//! uniform random graph, and two graph scales. The paper's conclusions
//! should hold for every input: errors negative, conv strictly better
//! than nowp.

use ffsim_bench::{render_table, run_modes};
use ffsim_uarch::CoreConfig;
use ffsim_workloads::{gap, Graph, Workload};

fn main() {
    let core = CoreConfig::golden_cove_like();
    let max = 1_500_000;

    let graphs: Vec<(String, Graph)> = vec![
        ("rmat-13/s42".into(), Graph::rmat(1 << 13, 16, 42)),
        ("rmat-13/s7".into(), Graph::rmat(1 << 13, 16, 7)),
        ("rmat-13/s99".into(), Graph::rmat(1 << 13, 16, 99)),
        ("rmat-12".into(), Graph::rmat(1 << 12, 16, 42)),
        ("rmat-14".into(), Graph::rmat(1 << 14, 16, 42)),
        ("uniform-13".into(), Graph::uniform(1 << 13, 16, 42)),
    ];

    println!("ROBUSTNESS: nowp / conv error vs wpemul across graph inputs\n");
    let mut rows = Vec::new();
    let mut conv_wins = 0;
    let mut negative = 0;
    let mut total = 0;
    for (label, g) in &graphs {
        let src = g.max_degree_vertex();
        let kernels: Vec<Workload> = vec![gap::bfs(g, src).unwrap(), gap::sssp(g, src, 3).unwrap()];
        for w in kernels {
            let [nowp, _, conv, wpemul] = run_modes(&w, &core, max);
            let e_nowp = nowp.error_vs(&wpemul);
            let e_conv = conv.error_vs(&wpemul);
            total += 1;
            if e_nowp < 0.0 {
                negative += 1;
            }
            if e_conv.abs() < e_nowp.abs() {
                conv_wins += 1;
            }
            rows.push(vec![
                format!("{label}/{}", w.name()),
                format!("{e_nowp:+.1}%"),
                format!("{e_conv:+.1}%"),
                format!("{:.0}%", conv.convergence.conv_frac() * 100.0),
                format!("{:.0}%", conv.convergence.recover_frac() * 100.0),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["input/kernel", "nowp", "conv", "conv frac", "addr recover"],
            &rows
        )
    );
    println!("nowp error negative on {negative}/{total} inputs;");
    println!("conv strictly more accurate than nowp on {conv_wins}/{total} inputs");
}
