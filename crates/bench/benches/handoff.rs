//! Criterion benchmark of the batched frontend→timing handoff (see
//! DESIGN.md §"Batched handoff and the block cache"): how fast the
//! functional frontend can stream instructions into a consumer as a
//! function of the batch size requested per [`FetchSource::fill`] call,
//! with the emulator's pre-decoded basic-block cache enabled and
//! disabled. Batch size 1 approximates the old per-instruction `pop`
//! handoff (one virtual call and one `VecDeque` pop per instruction);
//! larger batches amortize that boundary until raw emulation speed —
//! where the block cache is the lever — dominates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ffsim_emu::{Emulator, InstrQueue, NoFrontendWrongPath, StreamBuf};
use ffsim_isa::{Asm, Program, Reg};
use std::hint::black_box;

/// Roughly 60k dynamic instructions with a load and a loop branch per
/// iteration — the same shape the component benches use, branchy enough
/// that block boundaries (branches) occur at a realistic rate.
fn loop_program(n: i64) -> Program {
    let (x, y, base) = (Reg::new(1), Reg::new(2), Reg::new(5));
    let mut a = Asm::new();
    a.li(base, 0x1000_0000);
    a.li(x, n);
    a.label("loop");
    a.andi(y, x, 63);
    a.slli(y, y, 3);
    a.add(y, y, base);
    a.ld(y, 0, y);
    a.addi(x, x, -1);
    a.bnez(x, "loop");
    a.halt();
    a.assemble().unwrap()
}

/// Drains the whole program through the batched handoff in `batch`-sized
/// fills, returning the delivered instruction count.
fn drain(program: &Program, batch: usize, block_cache: bool) -> usize {
    let mut emu = Emulator::new(program.clone()).unwrap();
    if !block_cache {
        emu.set_block_cache(None);
    }
    let mut q = InstrQueue::new(emu, NoFrontendWrongPath, 64);
    let mut buf = StreamBuf::new();
    let mut delivered = 0usize;
    loop {
        buf.clear();
        let n = q.fill(&mut buf, batch);
        if n == 0 {
            break;
        }
        for entry in buf.entries() {
            black_box(entry.inst.pc);
        }
        delivered += n;
    }
    delivered
}

fn handoff_rate(c: &mut Criterion) {
    let program = loop_program(10_000);
    let total = drain(&program, 256, true) as u64;
    let mut group = c.benchmark_group("handoff");
    group.throughput(Throughput::Elements(total));
    for &batch in &[1usize, 16, 64, 256] {
        for &cache in &[true, false] {
            let label = if cache { "blockcache" } else { "nocache" };
            group.bench_with_input(
                BenchmarkId::new(format!("fill_{label}"), batch),
                &batch,
                |b, &batch| b.iter(|| drain(&program, batch, cache)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, handoff_rate);
criterion_main!(benches);
