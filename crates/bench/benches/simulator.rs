//! Criterion benchmarks: end-to-end simulation throughput per wrong-path
//! technique. This is the §V-B speed comparison in benchmark form — the
//! relative cost of the techniques (nowp < instrec ≤ conv < wpemul) is
//! the paper's speed result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ffsim_core::{SimConfig, Simulator, WrongPathMode};
use ffsim_uarch::CoreConfig;
use ffsim_workloads::{gap, speclike, Graph, Workload};

const INSTRUCTIONS: u64 = 50_000;

fn bench_workload(c: &mut Criterion, group_name: &str, workload: &Workload) {
    let mut group = c.benchmark_group(group_name);
    group.throughput(Throughput::Elements(INSTRUCTIONS));
    group.sample_size(10);
    for mode in WrongPathMode::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.label()),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let mut cfg = SimConfig::with_core(CoreConfig::golden_cove_like(), mode);
                    cfg.max_instructions = Some(INSTRUCTIONS);
                    let result =
                        Simulator::new(workload.program().clone(), workload.memory().clone(), cfg)
                            .unwrap()
                            .run()
                            .unwrap();
                    assert!(result.cycles > 0);
                    result.cycles
                });
            },
        );
    }
    group.finish();
}

fn simulation_throughput(c: &mut Criterion) {
    // Branch-miss-heavy graph kernel: the paper's worst case for
    // wrong-path modeling overhead.
    let g = Graph::rmat(1 << 11, 12, 42);
    let bfs = gap::bfs(&g, g.max_degree_vertex()).unwrap();
    bench_workload(c, "simulate_gap_bfs", &bfs);

    // Regular FP kernel: wrong-path modeling is nearly free.
    let triad = speclike::stream_triad(1 << 13, 100).unwrap();
    bench_workload(c, "simulate_fp_triad", &triad);
}

criterion_group!(benches, simulation_throughput);
criterion_main!(benches);
