//! Criterion benchmarks of the individual substrates: functional
//! emulation rate, cache lookups, branch prediction, wrong-path
//! reconstruction and recovery. These bound the simulator's throughput
//! budget component by component.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ffsim_core::{
    reconstruct, recover_addresses, CodeCache, ConvergenceConfig, ConvergenceStats, Pipeline,
};
use ffsim_emu::{Emulator, FollowComputed, InstrQueue, NoFrontendWrongPath};
use ffsim_isa::{Asm, BranchCond, Instr, Reg};
use ffsim_obs::{MetricsRegistry, ObsConfig, Phase, TraceEvent, TraceEventKind, TraceSource};
use ffsim_uarch::{BranchPredictor, Cache, CoreConfig, PathKind, Tlb};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn loop_program(n: i64) -> ffsim_isa::Program {
    let (x, y, base) = (Reg::new(1), Reg::new(2), Reg::new(5));
    let mut a = Asm::new();
    a.li(base, 0x1000_0000);
    a.li(x, n);
    a.label("loop");
    a.andi(y, x, 63);
    a.slli(y, y, 3);
    a.add(y, y, base);
    a.ld(y, 0, y);
    a.addi(x, x, -1);
    a.bnez(x, "loop");
    a.halt();
    a.assemble().unwrap()
}

fn emulator_step_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("emulator");
    let program = loop_program(10_000);
    group.throughput(Throughput::Elements(60_000));
    group.bench_function("step_60k_instructions", |b| {
        b.iter(|| {
            let mut emu = Emulator::new(program.clone()).unwrap();
            emu.run_to_halt(100_000).unwrap()
        });
    });
    group.throughput(Throughput::Elements(572));
    group.bench_function("wrong_path_emulation_572", |b| {
        let mut emu = Emulator::new(program.clone()).unwrap();
        emu.step().unwrap();
        emu.step().unwrap();
        let loop_head = emu.state().pc;
        b.iter(|| {
            emu.emulate_wrong_path(loop_head, 572, &mut FollowComputed)
                .insts
                .len()
        });
    });
    group.throughput(Throughput::Elements(60_000));
    group.bench_function("queue_pop_60k", |b| {
        b.iter(|| {
            let mut q = InstrQueue::new(
                Emulator::new(program.clone()).unwrap(),
                NoFrontendWrongPath,
                2048,
            );
            let mut count = 0u64;
            while q.pop().is_some() {
                count += 1;
            }
            count
        });
    });
    group.finish();
}

fn cache_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("uarch");
    let cfg = CoreConfig::golden_cove_like();
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("l1d_lookup_10k", |b| {
        let mut cache = Cache::new("bench", cfg.l1d);
        let mut addr = 0u64;
        b.iter(|| {
            let mut hits = 0;
            for _ in 0..10_000 {
                addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1) % (1 << 22);
                if cache.lookup(addr, false, PathKind::Correct) == ffsim_uarch::Lookup::Hit {
                    hits += 1;
                } else {
                    cache.fill(addr, false);
                }
            }
            hits
        });
    });
    group.bench_function("dtlb_access_10k", |b| {
        let mut tlb = Tlb::new(cfg.dtlb);
        let mut addr = 0u64;
        b.iter(|| {
            let mut walks = 0u64;
            for _ in 0..10_000 {
                addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1) % (1 << 26);
                walks += tlb.access(addr, PathKind::Correct);
            }
            walks
        });
    });
    group.bench_function("branch_observe_10k", |b| {
        let mut bp = BranchPredictor::new(cfg.branch);
        let branch = Instr::Branch {
            cond: BranchCond::Ne,
            rs1: Reg::new(1),
            rs2: Reg::new(2),
            target: 0x4000,
        };
        let mut x = 1u64;
        b.iter(|| {
            let mut miss = 0u64;
            for i in 0..10_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let taken = x & 8 != 0;
                let pc = 0x1000 + (i % 37) * 4;
                let next = if taken { 0x4000 } else { pc + 4 };
                if bp.observe(pc, &branch, taken, next).mispredicted {
                    miss += 1;
                }
            }
            miss
        });
    });
    group.finish();
}

fn wrongpath_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("wrongpath");
    let cfg = CoreConfig::golden_cove_like();
    let program = loop_program(1000);
    // Pre-populate the code cache and collect a future window.
    let mut code_cache = CodeCache::unbounded();
    let mut future = Vec::new();
    let mut emu = Emulator::new(program.clone()).unwrap();
    while let Ok(inst) = emu.step() {
        code_cache.insert(inst.pc, inst.instr);
        if future.len() < 512 {
            future.push(inst);
        }
    }
    let predictor = BranchPredictor::new(cfg.branch);
    let start = program.base() + 8;
    group.throughput(Throughput::Elements(572));
    group.bench_function("reconstruct_572", |b| {
        b.iter(|| reconstruct(&mut code_cache, &predictor, start, 572).len());
    });
    group.bench_function("reconstruct_plus_recover", |b| {
        b.iter(|| {
            let mut wp = reconstruct(&mut code_cache, &predictor, start, 572);
            let mut stats = ConvergenceStats::default();
            recover_addresses(&mut wp, &future, &ConvergenceConfig::default(), &mut stats);
            stats.converged
        });
    });
    group.finish();
}

/// Observability timing guard: a *disabled* trace ring in the pipeline hot
/// loop must cost at most ~2% (one predictable branch per instruction —
/// the `EventRing::record` fast path). The guard replays an emulated
/// instruction stream through `feed_correct`, with and without a disabled
/// `record` call per instruction, takes the minimum of several runs to
/// shed scheduler noise, and panics if the ratio exceeds the budget.
fn tracing_overhead_guard(_c: &mut Criterion) {
    const REPS: usize = 9;
    const BUDGET: f64 = 1.03;

    let program = loop_program(10_000);
    let mut emu = Emulator::new(program).unwrap();
    let mut trace = Vec::new();
    while let Ok(inst) = emu.step() {
        trace.push((inst.pc, inst.instr, inst.mem));
    }

    let run_once = |with_ring: bool| -> Duration {
        // The ring comes from a black-boxed config so the compiler cannot
        // prove it disabled and fold the fast-path branch away.
        let mut ring = black_box(ObsConfig::disabled()).ring();
        let mut p = Pipeline::new(CoreConfig::tiny_for_tests());
        let start = Instant::now();
        for (pc, instr, mem) in &trace {
            if with_ring {
                ring.record(|| TraceEvent {
                    ts: *pc,
                    source: TraceSource::Timing,
                    kind: TraceEventKind::Squash { instructions: 0 },
                });
            }
            p.feed_correct(*pc, instr, *mem);
        }
        let elapsed = start.elapsed();
        black_box((p.cycles(), ring.len()));
        elapsed
    };

    // Warm up, then interleave the two variants so slow drift (frequency
    // scaling, competing load) hits both minima equally.
    run_once(false);
    run_once(true);
    let (mut without, mut with) = (Duration::MAX, Duration::MAX);
    for _ in 0..REPS {
        without = without.min(run_once(false));
        with = with.min(run_once(true));
    }
    let ratio = with.as_secs_f64() / without.as_secs_f64();
    eprintln!(
        "tracing_overhead_guard: {} instructions, without {:?}, with disabled ring {:?}, ratio {ratio:.4}",
        trace.len(),
        without,
        with
    );
    assert!(
        ratio <= BUDGET,
        "disabled tracing costs {:.1}% on the pipeline hot loop (budget {:.0}%)",
        (ratio - 1.0) * 100.0,
        (BUDGET - 1.0) * 100.0
    );
}

/// Disabled-path guard for the unified metrics registry and the phase
/// profiler: one disabled `MetricsRegistry::inc` plus one disabled
/// `ProfHandle` enter/exit pair per instruction in the pipeline hot loop
/// must cost at most ~3% — each is a single predictable branch, the same
/// observer-effect discipline the trace ring guard above enforces.
fn profiler_overhead_guard(_c: &mut Criterion) {
    const REPS: usize = 9;
    const BUDGET: f64 = 1.03;

    let program = loop_program(10_000);
    let mut emu = Emulator::new(program).unwrap();
    let mut trace = Vec::new();
    while let Ok(inst) = emu.step() {
        trace.push((inst.pc, inst.instr, inst.mem));
    }

    let run_once = |with_obs: bool| -> Duration {
        // Black-boxed constructors so the compiler cannot prove the
        // registry and handle disabled and fold their fast paths away.
        let mut registry = black_box(MetricsRegistry::disabled());
        let retired = registry.counter("bench_retired_total").unwrap();
        let prof = black_box(ObsConfig::disabled()).prof_handle();
        let mut p = Pipeline::new(CoreConfig::tiny_for_tests());
        let start = Instant::now();
        for (pc, instr, mem) in &trace {
            if with_obs {
                prof.enter(Phase::TimingPipeline);
                registry.inc(retired, 1);
                p.feed_correct(*pc, instr, *mem);
                prof.exit();
            } else {
                p.feed_correct(*pc, instr, *mem);
            }
        }
        let elapsed = start.elapsed();
        black_box((p.cycles(), registry.counter_value(retired)));
        elapsed
    };

    run_once(false);
    run_once(true);
    let (mut without, mut with) = (Duration::MAX, Duration::MAX);
    for _ in 0..REPS {
        without = without.min(run_once(false));
        with = with.min(run_once(true));
    }
    let ratio = with.as_secs_f64() / without.as_secs_f64();
    eprintln!(
        "profiler_overhead_guard: {} instructions, without {:?}, with disabled registry+profiler {:?}, ratio {ratio:.4}",
        trace.len(),
        without,
        with
    );
    assert!(
        ratio <= BUDGET,
        "disabled registry+profiler cost {:.1}% on the pipeline hot loop (budget {:.0}%)",
        (ratio - 1.0) * 100.0,
        (BUDGET - 1.0) * 100.0
    );
}

criterion_group!(
    benches,
    emulator_step_rate,
    cache_rate,
    wrongpath_rate,
    tracing_overhead_guard,
    profiler_overhead_guard
);
criterion_main!(benches);
