//! Simulated-memory data layout: a bump allocator plus typed array
//! writers, used by every workload to place its data segments before
//! execution starts.

use ffsim_emu::Memory;
use ffsim_isa::Addr;

/// Default base of the data segment (program text lives at 0x1_0000).
pub const DATA_BASE: Addr = 0x1000_0000;

/// A bump allocator over the simulated address space, with helpers to
/// materialize typed arrays in a [`Memory`] image.
///
/// # Examples
///
/// ```
/// use ffsim_workloads::DataLayout;
/// use ffsim_emu::Memory;
/// let mut mem = Memory::new();
/// let mut layout = DataLayout::new();
/// let a = layout.alloc_u64_array(&mut mem, &[1, 2, 3]);
/// assert_eq!(mem.read_u64(a + 8), 2);
/// ```
#[derive(Clone, Debug)]
pub struct DataLayout {
    cursor: Addr,
}

impl DataLayout {
    /// Starts allocating at [`DATA_BASE`].
    #[must_use]
    pub fn new() -> DataLayout {
        DataLayout { cursor: DATA_BASE }
    }

    /// Starts allocating at a custom base address.
    #[must_use]
    pub fn with_base(base: Addr) -> DataLayout {
        DataLayout { cursor: base }
    }

    /// Reserves `bytes` bytes aligned to `align` and returns the base.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.cursor + align - 1) & !(align - 1);
        self.cursor = base + bytes;
        base
    }

    /// Reserves a zeroed `u64` array of `len` elements.
    pub fn alloc_u64_zeroed(&mut self, len: u64) -> Addr {
        self.alloc(len * 8, 8)
    }

    /// Reserves a zeroed `u32` array of `len` elements.
    pub fn alloc_u32_zeroed(&mut self, len: u64) -> Addr {
        self.alloc(len * 4, 8)
    }

    /// Reserves a zeroed `f64` array of `len` elements.
    pub fn alloc_f64_zeroed(&mut self, len: u64) -> Addr {
        self.alloc(len * 8, 8)
    }

    /// Writes a `u64` array into memory and returns its base.
    pub fn alloc_u64_array(&mut self, mem: &mut Memory, values: &[u64]) -> Addr {
        let base = self.alloc(values.len() as u64 * 8, 8);
        for (i, &v) in values.iter().enumerate() {
            mem.write_u64(base + i as u64 * 8, v);
        }
        base
    }

    /// Writes a `u32` array into memory and returns its base.
    pub fn alloc_u32_array(&mut self, mem: &mut Memory, values: &[u32]) -> Addr {
        let base = self.alloc(values.len() as u64 * 4, 8);
        for (i, &v) in values.iter().enumerate() {
            mem.write_u32(base + i as u64 * 4, v);
        }
        base
    }

    /// Writes an `f64` array into memory and returns its base.
    pub fn alloc_f64_array(&mut self, mem: &mut Memory, values: &[f64]) -> Addr {
        let base = self.alloc(values.len() as u64 * 8, 8);
        for (i, &v) in values.iter().enumerate() {
            mem.write_f64(base + i as u64 * 8, v);
        }
        base
    }

    /// Writes a byte array into memory and returns its base.
    pub fn alloc_bytes(&mut self, mem: &mut Memory, values: &[u8]) -> Addr {
        let base = self.alloc(values.len() as u64, 8);
        mem.write_bytes(base, values);
        base
    }

    /// Total bytes allocated so far (footprint estimate).
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.cursor - DATA_BASE
    }
}

impl Default for DataLayout {
    fn default() -> DataLayout {
        DataLayout::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_aligned_and_disjoint() {
        let mut l = DataLayout::new();
        let a = l.alloc(10, 8);
        let b = l.alloc(1, 64);
        let c = l.alloc(8, 8);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 10);
        assert!(c > b);
    }

    #[test]
    fn arrays_roundtrip() {
        let mut mem = Memory::new();
        let mut l = DataLayout::new();
        let u = l.alloc_u32_array(&mut mem, &[7, 8, 9]);
        let f = l.alloc_f64_array(&mut mem, &[1.5, -2.5]);
        let b = l.alloc_bytes(&mut mem, b"hello");
        assert_eq!(mem.read_u32(u + 4), 8);
        assert_eq!(mem.read_f64(f + 8), -2.5);
        assert_eq!(mem.read_u8(b + 4), b'o');
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        DataLayout::new().alloc(8, 3);
    }
}
