//! Integer (irregular) SPEC-like kernels: pointer chasing, hashing,
//! searching, tree walking, string matching, and compression-style
//! bit/byte manipulation.

use crate::layout::DataLayout;
use crate::workload::{Workload, WorkloadError};
use ffsim_emu::Memory;
use ffsim_isa::{Asm, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn reg(i: u8) -> Reg {
    Reg::new(i)
}

/// `mcf`-like: serialized pointer chasing around a single random cycle —
/// memory-latency-bound, almost no branch misses.
pub fn pointer_chase(nodes: usize, steps: usize, seed: u64) -> Result<Workload, WorkloadError> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Sattolo's algorithm: a single cycle visiting every node.
    let mut next: Vec<u64> = (0..nodes as u64).collect();
    for i in (1..nodes).rev() {
        let j = rng.gen_range(0..i);
        next.swap(i, j);
    }
    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let arr = layout.alloc_u64_array(&mut mem, &next);
    let result = layout.alloc_u64_zeroed(1);

    let base = reg(5);
    let cur = reg(10);
    let count = reg(11);
    let t1 = reg(12);

    let mut a = Asm::new();
    a.li(base, arr as i64);
    a.li(cur, 0);
    a.li(count, steps as i64);
    a.label("chase");
    a.slli(t1, cur, 3);
    a.add(t1, t1, base);
    a.ld(cur, 0, t1);
    a.addi(count, count, -1);
    a.bnez(count, "chase");
    a.li(t1, result as i64);
    a.sd(cur, 0, t1);
    a.halt();

    let mut expect = 0u64;
    for _ in 0..steps {
        expect = next[expect as usize];
    }
    Ok(
        Workload::new("pointer_chase", a.assemble()?, mem).with_validator(Box::new(move |m| {
            let got = m.read_u64(result);
            (got == expect)
                .then_some(())
                .ok_or_else(|| format!("final node {got}, expected {expect}"))
        })),
    )
}

const HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// `xalancbmk`-like: open-addressing hash probes with data-dependent
/// collision loops over a large table.
pub fn hash_probe(table_size: usize, probes: usize, seed: u64) -> Result<Workload, WorkloadError> {
    if !table_size.is_power_of_two() {
        return Err(WorkloadError::InvalidParam(
            "table must be a power of two".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mask = (table_size - 1) as u64;
    // Fill ~60% of the table with non-zero keys via linear probing.
    let mut table = vec![0u64; table_size];
    let mut inserted = Vec::new();
    while inserted.len() < table_size * 6 / 10 {
        let key = rng.gen_range(1u64..u64::MAX);
        let mut h = key.wrapping_mul(HASH_MULT) & mask;
        loop {
            if table[h as usize] == 0 {
                table[h as usize] = key;
                inserted.push(key);
                break;
            }
            if table[h as usize] == key {
                break;
            }
            h = (h + 1) & mask;
        }
    }
    // Probe keys: half present, half absent.
    let queries: Vec<u64> = (0..probes)
        .map(|i| {
            if i % 2 == 0 {
                inserted[rng.gen_range(0..inserted.len())]
            } else {
                rng.gen_range(1u64..u64::MAX) | 1 << 63 // very likely absent
            }
        })
        .collect();
    let expect: u64 = queries
        .iter()
        .filter(|&&q| {
            let mut h = q.wrapping_mul(HASH_MULT) & mask;
            loop {
                match table[h as usize] {
                    0 => return false,
                    t if t == q => return true,
                    _ => h = (h + 1) & mask,
                }
            }
        })
        .count() as u64;

    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let table_a = layout.alloc_u64_array(&mut mem, &table);
    let queries_a = layout.alloc_u64_array(&mut mem, &queries);
    let result = layout.alloc_u64_zeroed(1);

    let tab = reg(5);
    let qry = reg(6);
    let mask_r = reg(7);
    let mult = reg(8);
    let found = reg(10);
    let qi = reg(11);
    let nq = reg(12);
    let key = reg(13);
    let h = reg(14);
    let t1 = reg(15);
    let slot = reg(16);

    let mut a = Asm::new();
    a.li(tab, table_a as i64);
    a.li(qry, queries_a as i64);
    a.li(mask_r, mask as i64);
    a.li(mult, HASH_MULT as i64);
    a.li(found, 0);
    a.li(qi, 0);
    a.li(nq, probes as i64);
    a.label("query");
    a.bge(qi, nq, "done");
    a.slli(t1, qi, 3);
    a.add(t1, t1, qry);
    a.ld(key, 0, t1);
    a.addi(qi, qi, 1);
    a.mul(h, key, mult);
    a.and_(h, h, mask_r);
    a.label("probe");
    a.slli(t1, h, 3);
    a.add(t1, t1, tab);
    a.ld(slot, 0, t1);
    a.beqz(slot, "query"); // empty: absent
    a.beq(slot, key, "hit");
    a.addi(h, h, 1);
    a.and_(h, h, mask_r);
    a.j("probe");
    a.label("hit");
    a.addi(found, found, 1);
    a.j("query");
    a.label("done");
    a.li(t1, result as i64);
    a.sd(found, 0, t1);
    a.halt();

    Ok(
        Workload::new("hash_probe", a.assemble()?, mem).with_validator(Box::new(move |m| {
            let got = m.read_u64(result);
            (got == expect)
                .then_some(())
                .ok_or_else(|| format!("found {got}, expected {expect}"))
        })),
    )
}

/// `gobmk`-ish: repeated binary searches — ~50% mispredicted comparisons,
/// log-depth dependence chains.
pub fn binary_search(len: usize, searches: usize, seed: u64) -> Result<Workload, WorkloadError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sorted: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1 << 40)).collect();
    sorted.sort_unstable();
    sorted.dedup();
    let n = sorted.len();
    let queries: Vec<u64> = (0..searches)
        .map(|i| {
            if i % 3 == 0 {
                sorted[rng.gen_range(0..n)]
            } else {
                rng.gen_range(0..1 << 40)
            }
        })
        .collect();
    let expect: u64 = queries
        .iter()
        .filter(|q| sorted.binary_search(q).is_ok())
        .count() as u64;

    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let arr = layout.alloc_u64_array(&mut mem, &sorted);
    let qarr = layout.alloc_u64_array(&mut mem, &queries);
    let result = layout.alloc_u64_zeroed(1);

    let base = reg(5);
    let qry = reg(6);
    let found = reg(10);
    let qi = reg(11);
    let nq = reg(12);
    let key = reg(13);
    let lo = reg(14);
    let hi = reg(15);
    let mid = reg(16);
    let t1 = reg(17);
    let v = reg(18);

    let mut a = Asm::new();
    a.li(base, arr as i64);
    a.li(qry, qarr as i64);
    a.li(found, 0);
    a.li(qi, 0);
    a.li(nq, searches as i64);
    a.label("query");
    a.bge(qi, nq, "done");
    a.slli(t1, qi, 3);
    a.add(t1, t1, qry);
    a.ld(key, 0, t1);
    a.addi(qi, qi, 1);
    a.li(lo, 0);
    a.li(hi, n as i64);
    a.label("bisect");
    a.bge(lo, hi, "query"); // empty range: absent
    a.add(mid, lo, hi);
    a.srli(mid, mid, 1);
    a.slli(t1, mid, 3);
    a.add(t1, t1, base);
    a.ld(v, 0, t1);
    a.beq(v, key, "hit");
    a.bltu(v, key, "go_right");
    a.mv(hi, mid);
    a.j("bisect");
    a.label("go_right");
    a.addi(lo, mid, 1);
    a.j("bisect");
    a.label("hit");
    a.addi(found, found, 1);
    a.j("query");
    a.label("done");
    a.li(t1, result as i64);
    a.sd(found, 0, t1);
    a.halt();

    Ok(
        Workload::new("binary_search", a.assemble()?, mem).with_validator(Box::new(move |m| {
            let got = m.read_u64(result);
            (got == expect)
                .then_some(())
                .ok_or_else(|| format!("found {got}, expected {expect}"))
        })),
    )
}

/// `omnetpp`-ish: key-directed descents through an implicit binary tree —
/// pointer-ish traversal with a data-dependent direction branch per level.
pub fn tree_walk(nodes: usize, walks: usize, seed: u64) -> Result<Workload, WorkloadError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let keys: Vec<u64> = (0..nodes).map(|_| rng.gen_range(0..1 << 32)).collect();
    let queries: Vec<u64> = (0..walks).map(|_| rng.gen_range(0..1 << 32)).collect();
    // Reference: descend from index 1, xor-accumulating visited keys.
    let mut expect = 0u64;
    for &q in &queries {
        let mut idx = 1usize;
        while idx < nodes {
            let k = keys[idx];
            expect ^= k;
            idx = if q < k { 2 * idx } else { 2 * idx + 1 };
        }
    }

    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let karr = layout.alloc_u64_array(&mut mem, &keys);
    let qarr = layout.alloc_u64_array(&mut mem, &queries);
    let result = layout.alloc_u64_zeroed(1);

    let kbase = reg(5);
    let qbase = reg(6);
    let nn = reg(7);
    let acc = reg(10);
    let qi = reg(11);
    let nq = reg(12);
    let q = reg(13);
    let idx = reg(14);
    let t1 = reg(15);
    let k = reg(16);

    let mut a = Asm::new();
    a.li(kbase, karr as i64);
    a.li(qbase, qarr as i64);
    a.li(nn, nodes as i64);
    a.li(acc, 0);
    a.li(qi, 0);
    a.li(nq, walks as i64);
    a.label("walk");
    a.bge(qi, nq, "done");
    a.slli(t1, qi, 3);
    a.add(t1, t1, qbase);
    a.ld(q, 0, t1);
    a.addi(qi, qi, 1);
    a.li(idx, 1);
    a.label("descend");
    a.bge(idx, nn, "walk");
    a.slli(t1, idx, 3);
    a.add(t1, t1, kbase);
    a.ld(k, 0, t1);
    a.xor(acc, acc, k);
    a.slli(idx, idx, 1);
    a.bgeu(q, k, "right");
    a.j("descend");
    a.label("right");
    a.addi(idx, idx, 1);
    a.j("descend");
    a.label("done");
    a.li(t1, result as i64);
    a.sd(acc, 0, t1);
    a.halt();

    Ok(
        Workload::new("tree_walk", a.assemble()?, mem).with_validator(Box::new(move |m| {
            let got = m.read_u64(result);
            (got == expect)
                .then_some(())
                .ok_or_else(|| format!("checksum {got:#x}, expected {expect:#x}"))
        })),
    )
}

/// `perlbench`-ish: naive substring search over a small-alphabet text —
/// byte loads and an early-exit inner comparison loop.
pub fn string_match(
    text_len: usize,
    pattern_len: usize,
    seed: u64,
) -> Result<Workload, WorkloadError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let alphabet = b"abcd";
    let text: Vec<u8> = (0..text_len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect();
    let pattern: Vec<u8> = (0..pattern_len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect();
    let expect = if text_len >= pattern_len {
        text.windows(pattern_len)
            .filter(|w| *w == pattern.as_slice())
            .count() as u64
    } else {
        0
    };

    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let text_a = layout.alloc_bytes(&mut mem, &text);
    let pat_a = layout.alloc_bytes(&mut mem, &pattern);
    let result = layout.alloc_u64_zeroed(1);

    let tbase = reg(5);
    let pbase = reg(6);
    let count = reg(10);
    let i = reg(11);
    let limit = reg(12);
    let j = reg(13);
    let plen = reg(14);
    let t1 = reg(15);
    let c1 = reg(16);
    let c2 = reg(17);
    let t2 = reg(18);

    let mut a = Asm::new();
    a.li(tbase, text_a as i64);
    a.li(pbase, pat_a as i64);
    a.li(count, 0);
    a.li(i, 0);
    a.li(limit, (text_len as i64 - pattern_len as i64 + 1).max(0));
    a.li(plen, pattern_len as i64);
    a.label("outer");
    a.bge(i, limit, "done");
    a.li(j, 0);
    a.label("inner");
    a.bge(j, plen, "matched");
    a.add(t1, i, j);
    a.add(t1, t1, tbase);
    a.lbu(c1, 0, t1);
    a.add(t2, j, pbase);
    a.lbu(c2, 0, t2);
    a.addi(j, j, 1);
    a.beq(c1, c2, "inner");
    a.addi(i, i, 1);
    a.j("outer");
    a.label("matched");
    a.addi(count, count, 1);
    a.addi(i, i, 1);
    a.j("outer");
    a.label("done");
    a.li(t1, result as i64);
    a.sd(count, 0, t1);
    a.halt();

    Ok(
        Workload::new("string_match", a.assemble()?, mem).with_validator(Box::new(move |m| {
            let got = m.read_u64(result);
            (got == expect)
                .then_some(())
                .ok_or_else(|| format!("matches {got}, expected {expect}"))
        })),
    )
}

/// Run-length encoding over run-structured bytes — sequential access with
/// data-dependent run-boundary branches.
pub fn rle_encode(len: usize, seed: u64) -> Result<Workload, WorkloadError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut input = Vec::with_capacity(len);
    while input.len() < len {
        let b: u8 = rng.gen_range(0..16);
        let run = rng.gen_range(1..20).min(len - input.len());
        input.extend(std::iter::repeat_n(b, run));
    }
    // Reference encoding: (byte, run<=255) pairs.
    let mut expect_out = Vec::new();
    let mut i = 0;
    while i < input.len() {
        let b = input[i];
        let mut run = 1usize;
        while i + run < input.len() && input[i + run] == b && run < 255 {
            run += 1;
        }
        expect_out.push(b);
        expect_out.push(run as u8);
        i += run;
    }
    let expect_pairs = (expect_out.len() / 2) as u64;

    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let in_a = layout.alloc_bytes(&mut mem, &input);
    let out_a = layout.alloc(2 * len as u64 + 16, 8);
    let result = layout.alloc_u64_zeroed(1);

    let ibase = reg(5);
    let obase = reg(6);
    let n = reg(7);
    let pairs = reg(10);
    let i_r = reg(11);
    let b = reg(12);
    let run = reg(13);
    let t1 = reg(14);
    let c = reg(15);
    let pos = reg(16);
    let cap = reg(17);

    let mut a = Asm::new();
    a.li(ibase, in_a as i64);
    a.li(obase, out_a as i64);
    a.li(n, len as i64);
    a.li(pairs, 0);
    a.li(i_r, 0);
    a.li(cap, 255);
    a.label("outer");
    a.bge(i_r, n, "done");
    a.add(t1, i_r, ibase);
    a.lbu(b, 0, t1);
    a.li(run, 1);
    a.label("extend");
    a.add(pos, i_r, run);
    a.bge(pos, n, "emit");
    a.bge(run, cap, "emit");
    a.add(t1, pos, ibase);
    a.lbu(c, 0, t1);
    a.bne(c, b, "emit");
    a.addi(run, run, 1);
    a.j("extend");
    a.label("emit");
    a.slli(t1, pairs, 1);
    a.add(t1, t1, obase);
    a.sb(b, 0, t1);
    a.sb(run, 1, t1);
    a.addi(pairs, pairs, 1);
    a.add(i_r, i_r, run);
    a.j("outer");
    a.label("done");
    a.li(t1, result as i64);
    a.sd(pairs, 0, t1);
    a.halt();

    Ok(
        Workload::new("rle_encode", a.assemble()?, mem).with_validator(Box::new(move |m| {
            let got = m.read_u64(result);
            if got != expect_pairs {
                return Err(format!("pairs {got}, expected {expect_pairs}"));
            }
            for (k, &want) in expect_out.iter().enumerate() {
                let got = m.read_u8(out_a + k as u64);
                if got != want {
                    return Err(format!("out[{k}] = {got}, expected {want}"));
                }
            }
            Ok(())
        })),
    )
}

/// Database-style filtered scan: `if a[i] > threshold { sum += a[i] }`
/// over a large array — a hard-to-predict data-dependent branch whose
/// wrong path *converges at the next element* with index-based (and thus
/// recoverable) addresses. This is the SPEC-INT-style case the paper's
/// convergence technique fixes.
pub fn filter_scan(len: usize, seed: u64) -> Result<Workload, WorkloadError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1000)).collect();
    let threshold = 500u64;
    let expect: u64 = data
        .iter()
        .filter(|&&v| v > threshold)
        .fold(0u64, |acc, &v| acc.wrapping_add(v));

    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let data_a = layout.alloc_u64_array(&mut mem, &data);
    let result = layout.alloc_u64_zeroed(1);

    let base = reg(5);
    let thr = reg(6);
    let sum = reg(10);
    let i = reg(11);
    let n = reg(12);
    let v = reg(13);
    let t1 = reg(14);

    let mut a = Asm::new();
    a.li(base, data_a as i64);
    a.li(thr, threshold as i64);
    a.li(sum, 0);
    a.li(i, 0);
    a.li(n, len as i64);
    a.label("scan");
    a.bge(i, n, "done");
    a.slli(t1, i, 3);
    a.add(t1, t1, base);
    a.ld(v, 0, t1);
    a.addi(i, i, 1);
    a.bgeu(thr, v, "scan"); // the ~50% data-dependent branch
    a.add(sum, sum, v);
    a.j("scan");
    a.label("done");
    a.li(t1, result as i64);
    a.sd(sum, 0, t1);
    a.halt();

    Ok(
        Workload::new("filter_scan", a.assemble()?, mem).with_validator(Box::new(move |m| {
            let got = m.read_u64(result);
            (got == expect)
                .then_some(())
                .ok_or_else(|| format!("sum {got}, expected {expect}"))
        })),
    )
}

/// Masked sparse gather: `if mask[i] { acc += data[idx[i]] }` — the
/// branch is data-dependent, the gathered accesses miss the caches, and
/// the wrong path converges at the next index with recoverable addresses
/// (both `idx[i+1]` directly and `data[idx[i+1]]` through the recovered
/// index load).
pub fn masked_gather(n: usize, data_len: usize, seed: u64) -> Result<Workload, WorkloadError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mask: Vec<u64> = (0..n).map(|_| u64::from(rng.gen_bool(0.5))).collect();
    let idx: Vec<u64> = (0..n).map(|_| rng.gen_range(0..data_len as u64)).collect();
    let data: Vec<u64> = (0..data_len).map(|_| rng.gen_range(0..1 << 30)).collect();
    let mut expect = 0u64;
    for i in 0..n {
        if mask[i] == 1 {
            expect = expect.wrapping_add(data[idx[i] as usize]);
        }
    }

    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let mask_a = layout.alloc_u64_array(&mut mem, &mask);
    let idx_a = layout.alloc_u64_array(&mut mem, &idx);
    let data_a = layout.alloc_u64_array(&mut mem, &data);
    let result = layout.alloc_u64_zeroed(1);

    let (mb, xb, db) = (reg(5), reg(6), reg(7));
    let acc = reg(10);
    let i = reg(11);
    let n_r = reg(12);
    let t1 = reg(13);
    let m_v = reg(14);
    let ix = reg(15);
    let v = reg(16);

    let mut a = Asm::new();
    a.li(mb, mask_a as i64);
    a.li(xb, idx_a as i64);
    a.li(db, data_a as i64);
    a.li(acc, 0);
    a.li(i, 0);
    a.li(n_r, n as i64);
    a.label("scan");
    a.bge(i, n_r, "done");
    a.slli(t1, i, 3);
    a.add(t1, t1, mb);
    a.ld(m_v, 0, t1);
    a.addi(i, i, 1);
    a.beqz(m_v, "scan"); // ~50% data-dependent branch
    a.slli(t1, i, 3);
    a.add(t1, t1, xb);
    a.ld(ix, -8, t1); // idx[i] (i already incremented)
    a.slli(t1, ix, 3);
    a.add(t1, t1, db);
    a.ld(v, 0, t1); // data[idx[i]] — the cache-missing gather
    a.add(acc, acc, v);
    a.j("scan");
    a.label("done");
    a.li(t1, result as i64);
    a.sd(acc, 0, t1);
    a.halt();

    Ok(
        Workload::new("masked_gather", a.assemble()?, mem).with_validator(Box::new(move |m| {
            let got = m.read_u64(result);
            (got == expect)
                .then_some(())
                .ok_or_else(|| format!("acc {got}, expected {expect}"))
        })),
    )
}

/// `xz`-like: variable-length prefix-code decoding from a packed
/// bitstream, with per-symbol data-dependent branches and histogram
/// stores — the mixed positive/negative wrong-path interference case.
pub fn bitstream_decode(num_symbols: usize, seed: u64) -> Result<Workload, WorkloadError> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Prefix code: A=0, B=10, C=110, D=111 (skewed symbol frequencies).
    let symbols: Vec<u8> = (0..num_symbols)
        .map(|_| {
            let r: f64 = rng.gen();
            if r < 0.5 {
                0
            } else if r < 0.8 {
                1
            } else if r < 0.95 {
                2
            } else {
                3
            }
        })
        .collect();
    let mut bits = Vec::new();
    for &s in &symbols {
        match s {
            0 => bits.push(0u8),
            1 => bits.extend([1, 0]),
            2 => bits.extend([1, 1, 0]),
            _ => bits.extend([1, 1, 1]),
        }
    }
    let mut words = vec![0u64; bits.len() / 64 + 1];
    for (i, &b) in bits.iter().enumerate() {
        words[i / 64] |= u64::from(b) << (i % 64);
    }
    let mut expect_hist = [0u64; 4];
    for &s in &symbols {
        expect_hist[s as usize] += 1;
    }

    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let bits_a = layout.alloc_u64_array(&mut mem, &words);
    let out_a = layout.alloc(num_symbols as u64 + 8, 8);
    let hist_a = layout.alloc_u64_zeroed(4);

    let bbase = reg(5);
    let obase = reg(6);
    let hbase = reg(7);
    let nsym = reg(8);
    let pos = reg(10); // bit position
    let si = reg(11); // symbols decoded
    let t1 = reg(12);
    let word = reg(13);
    let bit = reg(14);
    let sym = reg(15);
    let t2 = reg(16);
    let c63 = reg(17);

    let mut a = Asm::new();
    a.li(bbase, bits_a as i64);
    a.li(obase, out_a as i64);
    a.li(hbase, hist_a as i64);
    a.li(nsym, num_symbols as i64);
    a.li(pos, 0);
    a.li(si, 0);
    a.li(c63, 63);

    // read_bit subroutine effect inlined three times via a macro-ish
    // pattern: bit = (BITS[pos>>6] >> (pos&63)) & 1; pos += 1.
    let read_bit = |a: &mut Asm| {
        a.srli(t1, pos, 6);
        a.slli(t1, t1, 3);
        a.add(t1, t1, bbase);
        a.ld(word, 0, t1);
        a.and_(t2, pos, c63);
        a.srl(word, word, t2);
        a.andi(bit, word, 1);
        a.addi(pos, pos, 1);
    };

    a.label("symbol");
    a.bge(si, nsym, "done");
    read_bit(&mut a);
    a.li(sym, 0);
    a.beqz(bit, "emit"); // 0 → A
    read_bit(&mut a);
    a.li(sym, 1);
    a.beqz(bit, "emit"); // 10 → B
    read_bit(&mut a);
    a.li(sym, 2);
    a.beqz(bit, "emit"); // 110 → C
    a.li(sym, 3); // 111 → D
    a.label("emit");
    a.add(t1, si, obase);
    a.sb(sym, 0, t1);
    a.slli(t1, sym, 3);
    a.add(t1, t1, hbase);
    a.ld(t2, 0, t1);
    a.addi(t2, t2, 1);
    a.sd(t2, 0, t1);
    a.addi(si, si, 1);
    a.j("symbol");
    a.label("done");
    a.halt();

    let expected_syms = symbols.clone();
    Ok(
        Workload::new("bitstream_decode", a.assemble()?, mem).with_validator(Box::new(move |m| {
            for (k, &want) in expect_hist.iter().enumerate() {
                let got = m.read_u64(hist_a + k as u64 * 8);
                if got != want {
                    return Err(format!("hist[{k}] = {got}, expected {want}"));
                }
            }
            for (k, &want) in expected_syms.iter().enumerate() {
                let got = m.read_u8(out_a + k as u64);
                if got != want {
                    return Err(format!("out[{k}] = {got}, expected {want}"));
                }
            }
            Ok(())
        })),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_chase_validates() {
        pointer_chase(256, 1000, 1)
            .unwrap()
            .run_and_validate(100_000)
            .unwrap();
    }

    #[test]
    fn hash_probe_validates() {
        hash_probe(256, 300, 2)
            .unwrap()
            .run_and_validate(200_000)
            .unwrap();
    }

    #[test]
    fn binary_search_validates() {
        binary_search(500, 200, 3)
            .unwrap()
            .run_and_validate(200_000)
            .unwrap();
    }

    #[test]
    fn tree_walk_validates() {
        tree_walk(512, 300, 4)
            .unwrap()
            .run_and_validate(200_000)
            .unwrap();
    }

    #[test]
    fn string_match_validates() {
        string_match(2000, 4, 5)
            .unwrap()
            .run_and_validate(500_000)
            .unwrap();
    }

    #[test]
    fn string_match_pattern_longer_than_text() {
        string_match(3, 8, 6)
            .unwrap()
            .run_and_validate(10_000)
            .unwrap();
    }

    #[test]
    fn rle_encode_validates() {
        rle_encode(2000, 7)
            .unwrap()
            .run_and_validate(500_000)
            .unwrap();
    }

    #[test]
    fn bitstream_decode_validates() {
        bitstream_decode(1500, 8)
            .unwrap()
            .run_and_validate(500_000)
            .unwrap();
    }

    #[test]
    fn filter_scan_validates() {
        filter_scan(3000, 9)
            .unwrap()
            .run_and_validate(100_000)
            .unwrap();
    }

    #[test]
    fn masked_gather_validates() {
        masked_gather(2000, 512, 10)
            .unwrap()
            .run_and_validate(100_000)
            .unwrap();
    }
}
