//! Code-footprint-oriented SPEC-like kernels.
//!
//! * [`big_code`] plays the role the paper attributes to `gcc`: thousands
//!   of distinct basic blocks visited in pseudo-random order, so the
//!   instruction footprint far exceeds the L1I. This is the kernel where
//!   plain *instruction reconstruction* already pays off — wrong-path
//!   fetch prefetches instruction lines for the correct path (§V-A:
//!   "benchmarks, such as gcc, shift from negative towards 0% error").
//! * [`interp_dispatch`] is a bytecode-interpreter loop with an indirect
//!   dispatch jump per operation — the indirect-predictor stressor.

use crate::layout::DataLayout;
use crate::workload::{Workload, WorkloadError};
use ffsim_emu::Memory;
use ffsim_isa::{Asm, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn reg(i: u8) -> Reg {
    Reg::new(i)
}

/// One generated basic block's effect on the accumulator.
#[derive(Clone, Copy, Debug)]
enum BlockOp {
    Xor(i64),
    Add(i64),
    Shl(i64),
    Shr(i64),
}

impl BlockOp {
    fn apply(self, acc: u64) -> u64 {
        match self {
            BlockOp::Xor(k) => acc ^ k as u64,
            BlockOp::Add(k) => acc.wrapping_add(k as u64),
            BlockOp::Shl(k) => acc.rotate_left(k as u32), // emitted as shl+shr+or
            BlockOp::Shr(k) => acc.rotate_right(k as u32),
        }
    }
}

/// `gcc`-like: `num_blocks` distinct padded code blocks called through a
/// stub table in pseudo-random order, `visits` calls total. The code
/// footprint is ~64 bytes per block, far exceeding the L1I at bench
/// scale.
pub fn big_code(num_blocks: usize, visits: usize, seed: u64) -> Result<Workload, WorkloadError> {
    if num_blocks < 2 {
        return Err(WorkloadError::InvalidParam(
            "need at least two blocks".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Each block applies 4 random ops to the accumulator.
    let blocks: Vec<[BlockOp; 4]> = (0..num_blocks)
        .map(|_| {
            [(); 4].map(|()| match rng.gen_range(0..4) {
                0 => BlockOp::Xor(rng.gen_range(1..1 << 30)),
                1 => BlockOp::Add(rng.gen_range(1..1 << 30)),
                2 => BlockOp::Shl(rng.gen_range(1..31)),
                _ => BlockOp::Shr(rng.gen_range(1..31)),
            })
        })
        .collect();
    // The visit sequence (u32 block ids) lives in data memory.
    let seq: Vec<u32> = (0..visits)
        .map(|_| rng.gen_range(0..num_blocks as u32))
        .collect();
    let mut expect = 0x1234_5678_9abc_def0u64;
    for &id in &seq {
        for op in blocks[id as usize] {
            expect = op.apply(expect);
        }
    }

    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let seq_a = layout.alloc_u32_array(&mut mem, &seq);
    let result = layout.alloc_u64_zeroed(1);

    let seq_r = reg(5);
    let stub_r = reg(6);
    let acc = reg(28);
    let tmp = reg(29);
    let si = reg(10);
    let nvisit = reg(11);
    let t1 = reg(12);
    let target = reg(13);

    let mut a = Asm::new();
    // Driver.
    a.li(seq_r, seq_a as i64);
    a.la(stub_r, "stubs");
    a.li(acc, 0x1234_5678_9abc_def0u64 as i64);
    a.li(si, 0);
    a.li(nvisit, visits as i64);
    a.label("drive");
    a.bge(si, nvisit, "finish");
    a.slli(t1, si, 2);
    a.add(t1, t1, seq_r);
    a.lwu(target, 0, t1);
    a.addi(si, si, 1);
    a.slli(target, target, 2); // one stub instruction per block
    a.add(target, target, stub_r);
    a.jalr(Reg::RA, target, 0); // indirect call into the stub table
    a.j("drive");
    a.label("finish");
    a.li(t1, result as i64);
    a.sd(acc, 0, t1);
    a.halt();

    // Stub table: one direct jump per block at stride 4 bytes.
    a.label("stubs");
    for id in 0..num_blocks {
        a.j(format!("block{id}"));
    }
    // Blocks: 4 ops (rotates take 3 instructions) + ret, padded to a
    // uniform 16-instruction (64-byte) footprint.
    const BLOCK_INSTRS: usize = 16;
    for (id, ops) in blocks.iter().enumerate() {
        let start = a.len();
        a.label(format!("block{id}"));
        for op in ops {
            match *op {
                BlockOp::Xor(k) => {
                    a.xori(acc, acc, k);
                }
                BlockOp::Add(k) => {
                    a.addi(acc, acc, k);
                }
                BlockOp::Shl(k) => {
                    a.slli(tmp, acc, k);
                    a.srli(acc, acc, 64 - k);
                    a.or_(acc, acc, tmp);
                }
                BlockOp::Shr(k) => {
                    a.srli(tmp, acc, k);
                    a.slli(acc, acc, 64 - k);
                    a.or_(acc, acc, tmp);
                }
            }
        }
        a.ret();
        while a.len() - start < BLOCK_INSTRS {
            a.nop();
        }
    }

    Ok(
        Workload::new("big_code", a.assemble()?, mem).with_validator(Box::new(move |m| {
            let got = m.read_u64(result);
            (got == expect)
                .then_some(())
                .ok_or_else(|| format!("acc {got:#x}, expected {expect:#x}"))
        })),
    )
}

const INTERP_KEY: i64 = 0x9E37_79B9;

fn interp_step(op: u8, acc: u64, t: u64) -> (u64, u64) {
    match op {
        0 => (acc.wrapping_add(1), t),
        1 => (acc ^ t, t),
        2 => (acc << 1, t),
        3 => (acc >> 1, t),
        4 => (acc, t.wrapping_add(acc)),
        5 => (acc.wrapping_sub(t), t),
        6 => (acc, t ^ INTERP_KEY as u64),
        _ => (acc.wrapping_mul(5), t),
    }
}

/// `perlbench`-like: a bytecode interpreter whose dispatch is an indirect
/// jump through a handler table, one per executed operation.
pub fn interp_dispatch(num_ops: usize, seed: u64) -> Result<Workload, WorkloadError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bytecode: Vec<u8> = (0..num_ops).map(|_| rng.gen_range(0..8)).collect();
    let mut acc_e = 7u64;
    let mut t_e = 3u64;
    for &op in &bytecode {
        let (a2, t2) = interp_step(op, acc_e, t_e);
        acc_e = a2;
        t_e = t2;
    }

    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let code_a = layout.alloc_bytes(&mut mem, &bytecode);
    let result = layout.alloc_u64_zeroed(2);

    let code_r = reg(5);
    let handlers = reg(6);
    let acc = reg(28);
    let t = reg(27);
    let vpc = reg(10);
    let nops = reg(11);
    let t1 = reg(12);
    let op = reg(13);
    let tmp = reg(14);

    // Handlers are padded to a uniform stride so the dispatch can compute
    // the target address arithmetically.
    const HANDLER_INSTRS: usize = 8;

    let mut a = Asm::new();
    a.li(code_r, code_a as i64);
    a.la(handlers, "handlers");
    a.li(acc, 7);
    a.li(t, 3);
    a.li(vpc, 0);
    a.li(nops, num_ops as i64);
    a.label("dispatch");
    a.bge(vpc, nops, "finish");
    a.add(t1, vpc, code_r);
    a.lbu(op, 0, t1);
    a.addi(vpc, vpc, 1);
    a.slli(op, op, 5); // HANDLER_INSTRS * 4 = 32 bytes
    a.add(op, op, handlers);
    a.jr(op); // indirect dispatch
    a.label("finish");
    a.li(t1, result as i64);
    a.sd(acc, 0, t1);
    a.sd(t, 8, t1);
    a.halt();

    a.label("handlers");
    let pad_to = |a: &mut Asm, start: usize| {
        while a.len() - start < HANDLER_INSTRS {
            a.nop();
        }
    };
    // op 0: acc += 1
    let s = a.len();
    a.addi(acc, acc, 1);
    a.j("dispatch");
    pad_to(&mut a, s);
    // op 1: acc ^= t
    let s = a.len();
    a.xor(acc, acc, t);
    a.j("dispatch");
    pad_to(&mut a, s);
    // op 2: acc <<= 1
    let s = a.len();
    a.slli(acc, acc, 1);
    a.j("dispatch");
    pad_to(&mut a, s);
    // op 3: acc >>= 1
    let s = a.len();
    a.srli(acc, acc, 1);
    a.j("dispatch");
    pad_to(&mut a, s);
    // op 4: t += acc
    let s = a.len();
    a.add(t, t, acc);
    a.j("dispatch");
    pad_to(&mut a, s);
    // op 5: acc -= t
    let s = a.len();
    a.sub(acc, acc, t);
    a.j("dispatch");
    pad_to(&mut a, s);
    // op 6: t ^= KEY
    let s = a.len();
    a.li(tmp, INTERP_KEY);
    a.xor(t, t, tmp);
    a.j("dispatch");
    pad_to(&mut a, s);
    // op 7: acc *= 5
    let s = a.len();
    a.muli(acc, acc, 5);
    a.j("dispatch");
    pad_to(&mut a, s);

    Ok(
        Workload::new("interp_dispatch", a.assemble()?, mem).with_validator(Box::new(move |m| {
            let got_acc = m.read_u64(result);
            let got_t = m.read_u64(result + 8);
            if got_acc != acc_e {
                return Err(format!("acc {got_acc:#x}, expected {acc_e:#x}"));
            }
            if got_t != t_e {
                return Err(format!("t {got_t:#x}, expected {t_e:#x}"));
            }
            Ok(())
        })),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_code_validates() {
        big_code(50, 500, 1)
            .unwrap()
            .run_and_validate(500_000)
            .unwrap();
    }

    #[test]
    fn big_code_footprint_scales_with_blocks() {
        let small = big_code(10, 10, 2).unwrap();
        let large = big_code(200, 10, 2).unwrap();
        assert!(large.program().len() > small.program().len() + 190 * 16);
    }

    #[test]
    fn interp_dispatch_validates() {
        interp_dispatch(1000, 3)
            .unwrap()
            .run_and_validate(500_000)
            .unwrap();
    }

    #[test]
    fn interp_step_semantics() {
        assert_eq!(interp_step(0, 10, 0).0, 11);
        assert_eq!(interp_step(7, 10, 0).0, 50);
        assert_eq!(interp_step(5, 10, 4).0, 6);
    }
}
