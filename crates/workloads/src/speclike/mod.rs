//! SPEC-CPU-2017-like synthetic kernels.
//!
//! The paper's second benchmark set is SPEC CPU 2017 (all SPECrate INT and
//! FP benchmarks, 1B-instruction SimPoints). SPEC itself is proprietary,
//! so this module provides a suite of synthetic kernels engineered to
//! reproduce the *distribution* of behaviours the paper reports (Fig. 4
//! right):
//!
//! * **FP kernels** are regular number-crunching with well-predicted
//!   branches — wrong-path modeling barely matters (errors ≈ 0%);
//! * **INT kernels** have data-dependent branches and varied working
//!   sets — a negatively-skewed error distribution without wrong-path
//!   modeling;
//! * `big_code` plays the role the paper attributes to `gcc` (instruction
//!   cache pressure that *instruction reconstruction* already fixes);
//! * `bitstream_decode` plays the role of `xz` (mixed positive and
//!   negative interference, overshooting positive under convergence
//!   exploitation).
//!
//! Every kernel validates its result against a Rust reference.

mod code;
mod fp;
mod int;

pub use code::{big_code, interp_dispatch};
pub use fp::{dense_mv, dot_product, nbody_step, poly_eval, spmv, stencil3, stream_triad};
pub use int::{
    binary_search, bitstream_decode, filter_scan, hash_probe, masked_gather, pointer_chase,
    rle_encode, string_match, tree_walk,
};

use crate::workload::Workload;

/// Benchmark category, mirroring the paper's INT/FP split.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SpecCategory {
    /// Integer (irregular) kernels.
    Int,
    /// Floating-point (regular) kernels.
    Fp,
}

/// A kernel plus its category tag.
#[derive(Debug)]
pub struct SpecKernel {
    /// The runnable workload.
    pub workload: Workload,
    /// INT or FP.
    pub category: SpecCategory,
}

/// Builds the full SPEC-like suite at a given scale (0 = test-sized,
/// 1 = bench-sized), deterministic in `seed`.
#[must_use]
pub fn all_speclike(scale: u32, seed: u64) -> Vec<SpecKernel> {
    // Internal invariant: the canonical sizes used here are always in
    // range for every kernel, so construction cannot fail.
    let k = |workload: Result<Workload, crate::WorkloadError>, category| SpecKernel {
        workload: workload.expect("canonical SPEC-like parameters are valid"),
        category,
    };
    let s = scale;
    // Per-kernel sizes: (test, bench) tuples selected so bench runs are a
    // few hundred thousand to a few million dynamic instructions.
    let sz = |test: usize, bench: usize| if s == 0 { test } else { bench };
    vec![
        k(
            pointer_chase(sz(1 << 10, 1 << 17), sz(4_000, 200_000), seed),
            SpecCategory::Int,
        ),
        k(
            hash_probe(sz(1 << 10, 1 << 16), sz(2_000, 120_000), seed ^ 1),
            SpecCategory::Int,
        ),
        k(
            binary_search(sz(1 << 10, 1 << 16), sz(1_000, 40_000), seed ^ 2),
            SpecCategory::Int,
        ),
        k(
            tree_walk(sz(1 << 10, 1 << 16), sz(2_000, 60_000), seed ^ 3),
            SpecCategory::Int,
        ),
        k(
            string_match(sz(4_000, 400_000), sz(8, 24), seed ^ 4),
            SpecCategory::Int,
        ),
        k(rle_encode(sz(4_000, 600_000), seed ^ 5), SpecCategory::Int),
        k(
            bitstream_decode(sz(4_000, 300_000), seed ^ 6),
            SpecCategory::Int,
        ),
        k(
            filter_scan(sz(4_000, 1 << 18), seed ^ 10),
            SpecCategory::Int,
        ),
        k(
            masked_gather(sz(2_000, 1 << 16), sz(1 << 10, 1 << 19), seed ^ 11),
            SpecCategory::Int,
        ),
        k(
            big_code(sz(200, 3_000), sz(2_000, 60_000), seed ^ 7),
            SpecCategory::Int,
        ),
        k(
            interp_dispatch(sz(2_000, 200_000), seed ^ 8),
            SpecCategory::Int,
        ),
        k(
            stream_triad(sz(1 << 10, 1 << 16), sz(4, 8)),
            SpecCategory::Fp,
        ),
        k(dense_mv(sz(48, 320), sz(4, 6)), SpecCategory::Fp),
        k(stencil3(sz(1 << 10, 1 << 15), sz(4, 12)), SpecCategory::Fp),
        k(
            dot_product(sz(1 << 10, 1 << 16), sz(4, 10)),
            SpecCategory::Fp,
        ),
        k(poly_eval(sz(1 << 9, 1 << 14), 12), SpecCategory::Fp),
        k(
            spmv(sz(1 << 9, 1 << 14), 8, sz(2, 6), seed ^ 9),
            SpecCategory::Fp,
        ),
        k(nbody_step(sz(64, 256), sz(2, 4)), SpecCategory::Fp),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_validate_at_test_scale() {
        for k in all_speclike(0, 2026) {
            let n = k
                .workload
                .run_and_validate(50_000_000)
                .unwrap_or_else(|e| panic!("{e}"));
            assert!(n > 500, "{} ran only {n} instructions", k.workload.name());
        }
    }

    #[test]
    fn suite_has_both_categories() {
        let suite = all_speclike(0, 1);
        let ints = suite
            .iter()
            .filter(|k| k.category == SpecCategory::Int)
            .count();
        let fps = suite
            .iter()
            .filter(|k| k.category == SpecCategory::Fp)
            .count();
        assert!(ints >= 8, "need a rich INT set, got {ints}");
        assert!(fps >= 6, "need a rich FP set, got {fps}");
    }

    #[test]
    fn kernel_names_are_unique() {
        let suite = all_speclike(0, 1);
        let mut names: Vec<&str> = suite.iter().map(|k| k.workload.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
