//! Floating-point (regular) SPEC-like kernels: streaming, dense linear
//! algebra, stencils, reductions, polynomial evaluation, sparse
//! matrix-vector, and an n-body step.
//!
//! These play the role of SPEC FP in the paper's Fig. 4: regular
//! number-crunching with well-predicted loop branches, where every
//! wrong-path technique (including none at all) lands near 0% error.

use crate::layout::DataLayout;
use crate::workload::{Workload, WorkloadError};
use ffsim_emu::Memory;
use ffsim_isa::{Asm, FReg, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn reg(i: u8) -> Reg {
    Reg::new(i)
}

fn freg(i: u8) -> FReg {
    FReg::new(i)
}

fn check_f64_array(
    mem: &ffsim_emu::Memory,
    base: u64,
    expected: &[f64],
    what: &str,
) -> Result<(), String> {
    for (i, &want) in expected.iter().enumerate() {
        let got = mem.read_f64(base + i as u64 * 8);
        let tol = 1e-9 * want.abs().max(1.0);
        if (got - want).abs() > tol {
            return Err(format!("{what}[{i}] = {got}, expected {want}"));
        }
    }
    Ok(())
}

/// `lbm`-like: STREAM triad `a[i] = b[i] + s * c[i]`, repeated.
pub fn stream_triad(n: usize, iters: usize) -> Result<Workload, WorkloadError> {
    let b_host: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
    let c_host: Vec<f64> = (0..n).map(|i| (n - i) as f64 * 0.25).collect();
    let scalar = 3.0;
    let mut expect = vec![0.0f64; n];
    for _ in 0..iters {
        for i in 0..n {
            expect[i] = b_host[i] + scalar * c_host[i];
        }
    }

    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let a_a = layout.alloc_f64_zeroed(n as u64);
    let b_a = layout.alloc_f64_array(&mut mem, &b_host);
    let c_a = layout.alloc_f64_array(&mut mem, &c_host);
    let consts = layout.alloc_f64_array(&mut mem, &[scalar]);

    let (ab, bb, cb) = (reg(5), reg(6), reg(7));
    let (it, i, n_r, t1) = (reg(10), reg(11), reg(12), reg(13));
    let (fb, fc, fs) = (freg(1), freg(2), freg(10));

    let mut a = Asm::new();
    a.li(ab, a_a as i64);
    a.li(bb, b_a as i64);
    a.li(cb, c_a as i64);
    a.li(t1, consts as i64);
    a.fld(fs, 0, t1);
    a.li(n_r, n as i64);
    a.li(it, iters as i64);
    a.label("iter");
    a.li(i, 0);
    a.label("loop");
    a.bge(i, n_r, "iter_done");
    a.slli(t1, i, 3);
    a.add(t1, t1, bb);
    a.fld(fb, 0, t1);
    a.slli(t1, i, 3);
    a.add(t1, t1, cb);
    a.fld(fc, 0, t1);
    a.fmul(fc, fc, fs);
    a.fadd(fb, fb, fc);
    a.slli(t1, i, 3);
    a.add(t1, t1, ab);
    a.fsd(fb, 0, t1);
    a.addi(i, i, 1);
    a.j("loop");
    a.label("iter_done");
    a.addi(it, it, -1);
    a.bnez(it, "iter");
    a.halt();

    Ok(Workload::new("stream_triad", a.assemble()?, mem)
        .with_validator(Box::new(move |m| check_f64_array(m, a_a, &expect, "a"))))
}

/// `cactuBSSN`-like: dense matrix-vector product `y = A·x`, repeated with
/// `x ← y` normalization-free chaining.
pub fn dense_mv(n: usize, iters: usize) -> Result<Workload, WorkloadError> {
    let a_host: Vec<f64> = (0..n * n)
        .map(|k| ((k % 17) as f64 - 8.0) / (n as f64 * 16.0))
        .collect();
    let mut x_host: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    let mut y_expect = vec![0.0f64; n];
    for _ in 0..iters {
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += a_host[i * n + j] * x_host[j];
            }
            y_expect[i] = acc;
        }
        std::mem::swap(&mut x_host, &mut y_expect);
    }
    std::mem::swap(&mut x_host, &mut y_expect); // y_expect holds last output

    let x_init: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let mat = layout.alloc_f64_array(&mut mem, &a_host);
    let x_a = layout.alloc_f64_array(&mut mem, &x_init);
    let y_a = layout.alloc_f64_zeroed(n as u64);
    let consts = layout.alloc_f64_array(&mut mem, &[0.0]);

    let (mb, xb, yb) = (reg(5), reg(6), reg(7));
    let (it, i, j, n_r, t1, row, xr, yr) = (
        reg(10),
        reg(11),
        reg(12),
        reg(13),
        reg(14),
        reg(15),
        reg(16),
        reg(17),
    );
    let (acc, fa, fx, zero) = (freg(1), freg(2), freg(3), freg(0));

    let mut a = Asm::new();
    a.li(mb, mat as i64);
    a.li(xb, x_a as i64);
    a.li(yb, y_a as i64);
    a.li(t1, consts as i64);
    a.fld(zero, 0, t1);
    a.li(n_r, n as i64);
    a.li(it, iters as i64);
    // xr/yr swap between iterations.
    a.mv(xr, xb);
    a.mv(yr, yb);
    a.label("iter");
    a.li(i, 0);
    a.mv(row, mb);
    a.label("rows");
    a.bge(i, n_r, "iter_done");
    a.fadd(acc, zero, zero);
    a.li(j, 0);
    a.label("cols");
    a.bge(j, n_r, "row_done");
    a.slli(t1, j, 3);
    a.add(t1, t1, row);
    a.fld(fa, 0, t1);
    a.slli(t1, j, 3);
    a.add(t1, t1, xr);
    a.fld(fx, 0, t1);
    a.fmul(fa, fa, fx);
    a.fadd(acc, acc, fa);
    a.addi(j, j, 1);
    a.j("cols");
    a.label("row_done");
    a.slli(t1, i, 3);
    a.add(t1, t1, yr);
    a.fsd(acc, 0, t1);
    a.slli(t1, n_r, 3);
    a.add(row, row, t1);
    a.addi(i, i, 1);
    a.j("rows");
    a.label("iter_done");
    // swap xr and yr
    a.mv(t1, xr);
    a.mv(xr, yr);
    a.mv(yr, t1);
    a.addi(it, it, -1);
    a.bnez(it, "iter");
    a.halt();

    // Iteration 1 writes y_a, iteration 2 writes x_a, ...: the final
    // output lives in y_a for odd iteration counts, x_a for even.
    let out = if iters % 2 == 1 { y_a } else { x_a };
    Ok(Workload::new("dense_mv", a.assemble()?, mem)
        .with_validator(Box::new(move |m| check_f64_array(m, out, &y_expect, "y"))))
}

/// 3-point stencil smoothing with buffer ping-pong.
pub fn stencil3(n: usize, iters: usize) -> Result<Workload, WorkloadError> {
    if n < 3 {
        return Err(WorkloadError::InvalidParam(
            "stencil needs at least 3 points".into(),
        ));
    }
    let third = 1.0 / 3.0;
    let mut cur: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64).collect();
    let init = cur.clone();
    let mut nxt = cur.clone();
    for _ in 0..iters {
        for i in 1..n - 1 {
            nxt[i] = (cur[i - 1] + cur[i] + cur[i + 1]) * third;
        }
        nxt[0] = cur[0];
        nxt[n - 1] = cur[n - 1];
        std::mem::swap(&mut cur, &mut nxt);
    }

    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let buf_a = layout.alloc_f64_array(&mut mem, &init);
    let buf_b = layout.alloc_f64_array(&mut mem, &init);
    let consts = layout.alloc_f64_array(&mut mem, &[third]);

    let (ab, bb) = (reg(5), reg(6));
    let (it, i, limit, t1, src, dst) = (reg(10), reg(11), reg(12), reg(13), reg(14), reg(15));
    let (f1, f2, fthird) = (freg(1), freg(2), freg(10));

    let mut a = Asm::new();
    a.li(ab, buf_a as i64);
    a.li(bb, buf_b as i64);
    a.li(t1, consts as i64);
    a.fld(fthird, 0, t1);
    a.li(limit, (n - 1) as i64);
    a.li(it, iters as i64);
    a.mv(src, ab);
    a.mv(dst, bb);
    a.label("iter");
    a.li(i, 1);
    a.label("loop");
    a.bge(i, limit, "iter_done");
    a.slli(t1, i, 3);
    a.add(t1, t1, src);
    a.fld(f1, -8, t1);
    a.fld(f2, 0, t1);
    a.fadd(f1, f1, f2);
    a.fld(f2, 8, t1);
    a.fadd(f1, f1, f2);
    a.fmul(f1, f1, fthird);
    a.slli(t1, i, 3);
    a.add(t1, t1, dst);
    a.fsd(f1, 0, t1);
    a.addi(i, i, 1);
    a.j("loop");
    a.label("iter_done");
    a.mv(t1, src);
    a.mv(src, dst);
    a.mv(dst, t1);
    a.addi(it, it, -1);
    a.bnez(it, "iter");
    a.halt();

    let out = if iters % 2 == 1 { buf_b } else { buf_a };
    let expect = cur;
    Ok(Workload::new("stencil3", a.assemble()?, mem)
        .with_validator(Box::new(move |m| check_f64_array(m, out, &expect, "grid"))))
}

/// `nab`-like reduction: repeated dot products.
pub fn dot_product(n: usize, iters: usize) -> Result<Workload, WorkloadError> {
    let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
    let mut dot = 0.0f64;
    for i in 0..n {
        dot += x[i] * y[i];
    }
    let expect = dot * iters as f64;

    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let x_a = layout.alloc_f64_array(&mut mem, &x);
    let y_a = layout.alloc_f64_array(&mut mem, &y);
    let consts = layout.alloc_f64_array(&mut mem, &[0.0]);
    let result = layout.alloc_f64_zeroed(1);

    let (xb, yb) = (reg(5), reg(6));
    let (it, i, n_r, t1) = (reg(10), reg(11), reg(12), reg(13));
    let (total, acc, fx, fy, zero) = (freg(4), freg(1), freg(2), freg(3), freg(0));

    let mut a = Asm::new();
    a.li(xb, x_a as i64);
    a.li(yb, y_a as i64);
    a.li(t1, consts as i64);
    a.fld(zero, 0, t1);
    a.fadd(total, zero, zero);
    a.li(n_r, n as i64);
    a.li(it, iters as i64);
    a.label("iter");
    a.fadd(acc, zero, zero);
    a.li(i, 0);
    a.label("loop");
    a.bge(i, n_r, "iter_done");
    a.slli(t1, i, 3);
    a.add(t1, t1, xb);
    a.fld(fx, 0, t1);
    a.slli(t1, i, 3);
    a.add(t1, t1, yb);
    a.fld(fy, 0, t1);
    a.fmul(fx, fx, fy);
    a.fadd(acc, acc, fx);
    a.addi(i, i, 1);
    a.j("loop");
    a.label("iter_done");
    a.fadd(total, total, acc);
    a.addi(it, it, -1);
    a.bnez(it, "iter");
    a.li(t1, result as i64);
    a.fsd(total, 0, t1);
    a.halt();

    Ok(
        Workload::new("dot_product", a.assemble()?, mem).with_validator(Box::new(move |m| {
            let got = m.read_f64(result);
            let tol = 1e-9 * expect.abs().max(1.0);
            ((got - expect).abs() <= tol)
                .then_some(())
                .ok_or_else(|| format!("dot = {got}, expected {expect}"))
        })),
    )
}

/// Horner polynomial evaluation over many points — long FP dependence
/// chains, negligible memory traffic.
pub fn poly_eval(points: usize, degree: usize) -> Result<Workload, WorkloadError> {
    let coeffs: Vec<f64> = (0..=degree).map(|k| 1.0 / (k + 1) as f64).collect();
    let xs: Vec<f64> = (0..points)
        .map(|i| (i % 200) as f64 / 100.0 - 1.0)
        .collect();
    let expect: Vec<f64> = xs
        .iter()
        .map(|&x| coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c))
        .collect();

    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let c_a = layout.alloc_f64_array(&mut mem, &coeffs);
    let x_a = layout.alloc_f64_array(&mut mem, &xs);
    let out_a = layout.alloc_f64_zeroed(points as u64);

    let (cb, xb, ob) = (reg(5), reg(6), reg(7));
    let (p, np, k, t1) = (reg(10), reg(11), reg(12), reg(13));
    let (acc, fx, fc) = (freg(1), freg(2), freg(3));

    let mut a = Asm::new();
    a.li(cb, c_a as i64);
    a.li(xb, x_a as i64);
    a.li(ob, out_a as i64);
    a.li(np, points as i64);
    a.li(p, 0);
    a.label("point");
    a.bge(p, np, "done");
    a.slli(t1, p, 3);
    a.add(t1, t1, xb);
    a.fld(fx, 0, t1);
    // acc = c[degree]
    a.li(k, degree as i64);
    a.slli(t1, k, 3);
    a.add(t1, t1, cb);
    a.fld(acc, 0, t1);
    a.label("horner");
    a.beqz(k, "store");
    a.addi(k, k, -1);
    a.fmul(acc, acc, fx);
    a.slli(t1, k, 3);
    a.add(t1, t1, cb);
    a.fld(fc, 0, t1);
    a.fadd(acc, acc, fc);
    a.j("horner");
    a.label("store");
    a.slli(t1, p, 3);
    a.add(t1, t1, ob);
    a.fsd(acc, 0, t1);
    a.addi(p, p, 1);
    a.j("point");
    a.label("done");
    a.halt();

    Ok(
        Workload::new("poly_eval", a.assemble()?, mem).with_validator(Box::new(move |m| {
            check_f64_array(m, out_a, &expect, "poly")
        })),
    )
}

/// `fotonik`-ish: sparse matrix-vector product in CSR — regular FP with a
/// gathered inner loop (mildly irregular for an FP code).
pub fn spmv(
    n: usize,
    nnz_per_row: usize,
    iters: usize,
    seed: u64,
) -> Result<Workload, WorkloadError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    offsets.push(0u64);
    for _ in 0..n {
        let mut row: Vec<u32> = (0..nnz_per_row)
            .map(|_| rng.gen_range(0..n as u32))
            .collect();
        row.sort_unstable();
        row.dedup();
        for &c in &row {
            cols.push(c);
            vals.push(rng.gen_range(-1.0..1.0));
        }
        offsets.push(cols.len() as u64);
    }
    let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    let mut y_expect = vec![0.0f64; n];
    let mut x_cur = x.clone();
    for _ in 0..iters {
        for i in 0..n {
            let mut acc = 0.0;
            for k in offsets[i] as usize..offsets[i + 1] as usize {
                acc += vals[k] * x_cur[cols[k] as usize];
            }
            y_expect[i] = acc;
        }
        std::mem::swap(&mut x_cur, &mut y_expect);
    }
    std::mem::swap(&mut x_cur, &mut y_expect);

    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let offs_a = layout.alloc_u64_array(&mut mem, &offsets);
    let cols_a = layout.alloc_u32_array(&mut mem, &cols);
    let vals_a = layout.alloc_f64_array(&mut mem, &vals);
    let x_a = layout.alloc_f64_array(&mut mem, &x);
    let y_a = layout.alloc_f64_zeroed(n as u64);
    let consts = layout.alloc_f64_array(&mut mem, &[0.0]);

    let (offs, colb, valb, xr, yr) = (reg(5), reg(6), reg(7), reg(8), reg(9));
    let (it, i, n_r, k, endk, t1, c) = (
        reg(10),
        reg(11),
        reg(12),
        reg(13),
        reg(14),
        reg(15),
        reg(16),
    );
    let (acc, fv, fx, zero) = (freg(1), freg(2), freg(3), freg(0));

    let mut a = Asm::new();
    a.li(offs, offs_a as i64);
    a.li(colb, cols_a as i64);
    a.li(valb, vals_a as i64);
    a.li(xr, x_a as i64);
    a.li(yr, y_a as i64);
    a.li(t1, consts as i64);
    a.fld(zero, 0, t1);
    a.li(n_r, n as i64);
    a.li(it, iters as i64);
    a.label("iter");
    a.li(i, 0);
    a.label("rows");
    a.bge(i, n_r, "iter_done");
    a.fadd(acc, zero, zero);
    a.slli(t1, i, 3);
    a.add(t1, t1, offs);
    a.ld(k, 0, t1);
    a.ld(endk, 8, t1);
    a.label("nnz");
    a.bge(k, endk, "row_done");
    a.slli(t1, k, 2);
    a.add(t1, t1, colb);
    a.lwu(c, 0, t1);
    a.slli(t1, k, 3);
    a.add(t1, t1, valb);
    a.fld(fv, 0, t1);
    a.slli(t1, c, 3);
    a.add(t1, t1, xr);
    a.fld(fx, 0, t1);
    a.fmul(fv, fv, fx);
    a.fadd(acc, acc, fv);
    a.addi(k, k, 1);
    a.j("nnz");
    a.label("row_done");
    a.slli(t1, i, 3);
    a.add(t1, t1, yr);
    a.fsd(acc, 0, t1);
    a.addi(i, i, 1);
    a.j("rows");
    a.label("iter_done");
    a.mv(t1, xr);
    a.mv(xr, yr);
    a.mv(yr, t1);
    a.addi(it, it, -1);
    a.bnez(it, "iter");
    a.halt();

    // Same ping-pong parity as dense_mv: odd iteration counts end in y_a.
    let out = if iters % 2 == 1 { y_a } else { x_a };
    Ok(Workload::new("spmv", a.assemble()?, mem)
        .with_validator(Box::new(move |m| check_f64_array(m, out, &y_expect, "y"))))
}

/// A 1-D n-body force accumulation step — FP-divide heavy, O(n²) compute
/// over a tiny working set.
pub fn nbody_step(bodies: usize, iters: usize) -> Result<Workload, WorkloadError> {
    let pos: Vec<f64> = (0..bodies).map(|i| i as f64 * 1.5 + 0.25).collect();
    let eps = 0.01;
    let mut force_expect = vec![0.0f64; bodies];
    for _ in 0..iters {
        for i in 0..bodies {
            let mut f = force_expect[i];
            for j in 0..bodies {
                let dx = pos[j] - pos[i];
                let r2 = dx * dx + eps;
                f += dx / r2;
            }
            force_expect[i] = f;
        }
    }

    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let pos_a = layout.alloc_f64_array(&mut mem, &pos);
    let force_a = layout.alloc_f64_zeroed(bodies as u64);
    let consts = layout.alloc_f64_array(&mut mem, &[eps]);

    let (pb, fb) = (reg(5), reg(6));
    let (it, i, j, n_r, t1) = (reg(10), reg(11), reg(12), reg(13), reg(14));
    let (facc, fxi, fxj, ftmp, feps) = (freg(1), freg(2), freg(3), freg(4), freg(10));

    let mut a = Asm::new();
    a.li(pb, pos_a as i64);
    a.li(fb, force_a as i64);
    a.li(t1, consts as i64);
    a.fld(feps, 0, t1);
    a.li(n_r, bodies as i64);
    a.li(it, iters as i64);
    a.label("iter");
    a.li(i, 0);
    a.label("outer");
    a.bge(i, n_r, "iter_done");
    a.slli(t1, i, 3);
    a.add(t1, t1, pb);
    a.fld(fxi, 0, t1);
    a.slli(t1, i, 3);
    a.add(t1, t1, fb);
    a.fld(facc, 0, t1);
    a.li(j, 0);
    a.label("inner");
    a.bge(j, n_r, "inner_done");
    a.slli(t1, j, 3);
    a.add(t1, t1, pb);
    a.fld(fxj, 0, t1);
    a.fsub(fxj, fxj, fxi); // dx
    a.fmul(ftmp, fxj, fxj);
    a.fadd(ftmp, ftmp, feps); // r2
    a.fdiv(fxj, fxj, ftmp);
    a.fadd(facc, facc, fxj);
    a.addi(j, j, 1);
    a.j("inner");
    a.label("inner_done");
    a.slli(t1, i, 3);
    a.add(t1, t1, fb);
    a.fsd(facc, 0, t1);
    a.addi(i, i, 1);
    a.j("outer");
    a.label("iter_done");
    a.addi(it, it, -1);
    a.bnez(it, "iter");
    a.halt();

    Ok(
        Workload::new("nbody_step", a.assemble()?, mem).with_validator(Box::new(move |m| {
            check_f64_array(m, force_a, &force_expect, "force")
        })),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_triad_validates() {
        stream_triad(200, 3)
            .unwrap()
            .run_and_validate(100_000)
            .unwrap();
    }

    #[test]
    fn dense_mv_validates_odd_and_even_iters() {
        dense_mv(12, 3).unwrap().run_and_validate(100_000).unwrap();
        dense_mv(12, 4).unwrap().run_and_validate(100_000).unwrap();
    }

    #[test]
    fn stencil3_validates_odd_and_even_iters() {
        stencil3(64, 3).unwrap().run_and_validate(100_000).unwrap();
        stencil3(64, 4).unwrap().run_and_validate(100_000).unwrap();
    }

    #[test]
    fn dot_product_validates() {
        dot_product(300, 2)
            .unwrap()
            .run_and_validate(100_000)
            .unwrap();
    }

    #[test]
    fn poly_eval_validates() {
        poly_eval(100, 8)
            .unwrap()
            .run_and_validate(100_000)
            .unwrap();
    }

    #[test]
    fn spmv_validates() {
        spmv(64, 6, 2, 3)
            .unwrap()
            .run_and_validate(200_000)
            .unwrap();
        spmv(64, 6, 3, 3)
            .unwrap()
            .run_and_validate(200_000)
            .unwrap();
    }

    #[test]
    fn nbody_validates() {
        nbody_step(24, 2)
            .unwrap()
            .run_and_validate(200_000)
            .unwrap();
    }
}
