//! PageRank (GAP `pr`): pull-style power iteration.
//!
//! The paper singles out `pr` as the GAP kernel that is *insensitive* to
//! wrong-path modeling "because it has no conditional branches in its
//! inner loop" — the gather loop below branches only on the well-predicted
//! loop counter.

use super::load_graph;
use crate::graph::Graph;
use crate::layout::DataLayout;
use crate::workload::{Workload, WorkloadError};
use ffsim_emu::Memory;
use ffsim_isa::{Asm, FReg, Reg};

const ALPHA: f64 = 0.85;

/// Reference PageRank, iterating in exactly the same order as the kernel
/// so results match bit-for-bit.
fn reference_scores(g: &Graph, iterations: usize) -> Vec<f64> {
    let n = g.num_vertices();
    let base = (1.0 - ALPHA) / n as f64;
    let inv_deg: Vec<f64> = (0..n)
        .map(|u| {
            let d = g.degree(u);
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();
    let mut score = vec![1.0 / n as f64; n];
    let mut contrib = vec![0.0f64; n];
    for _ in 0..iterations {
        for ((c, &s), &inv) in contrib.iter_mut().zip(&score).zip(&inv_deg) {
            *c = s * inv;
        }
        for (u, s) in score.iter_mut().enumerate() {
            let mut sum = 0.0;
            for &v in g.neighbors(u) {
                sum += contrib[v as usize];
            }
            *s = base + ALPHA * sum;
        }
    }
    score
}

/// Builds the PageRank workload with the given number of power
/// iterations.
///
/// # Errors
///
/// Returns an error if `iterations` is zero.
pub fn pr(g: &Graph, iterations: usize) -> Result<Workload, WorkloadError> {
    if iterations == 0 {
        return Err(WorkloadError::InvalidParam(
            "need at least one iteration".into(),
        ));
    }
    let n = g.num_vertices() as u64;
    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let img = load_graph(g, &mut mem, &mut layout);

    let inv_deg_host: Vec<f64> = (0..g.num_vertices())
        .map(|u| {
            let d = g.degree(u);
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();
    let score_host = vec![1.0 / n as f64; n as usize];
    let base_val = (1.0 - ALPHA) / n as f64;

    let score = layout.alloc_f64_array(&mut mem, &score_host);
    let inv_deg = layout.alloc_f64_array(&mut mem, &inv_deg_host);
    let contrib = layout.alloc_f64_zeroed(n);
    let consts = layout.alloc_f64_array(&mut mem, &[ALPHA, base_val, 0.0]);

    let offs = Reg::new(5);
    let nbr = Reg::new(6);
    let score_r = Reg::new(7);
    let invdeg_r = Reg::new(8);
    let contrib_r = Reg::new(9);
    let iter = Reg::new(10);
    let u = Reg::new(11);
    let n_r = Reg::new(12);
    let i = Reg::new(13);
    let end = Reg::new(14);
    let v = Reg::new(15);
    let t1 = Reg::new(16);
    let t2 = Reg::new(17);

    let sum = FReg::new(1);
    let tmp = FReg::new(2);
    let alpha = FReg::new(10);
    let base = FReg::new(11);
    let zero = FReg::new(0);

    let mut a = Asm::new();
    a.li(offs, img.offs as i64);
    a.li(nbr, img.nbr as i64);
    a.li(score_r, score as i64);
    a.li(invdeg_r, inv_deg as i64);
    a.li(contrib_r, contrib as i64);
    a.li(t1, consts as i64);
    a.fld(alpha, 0, t1);
    a.fld(base, 8, t1);
    a.fld(zero, 16, t1);
    a.li(iter, iterations as i64);
    a.li(n_r, n as i64);

    a.label("iteration");
    // contrib[u] = score[u] * inv_deg[u]
    a.li(u, 0);
    a.label("contrib_loop");
    a.bge(u, n_r, "contrib_done");
    a.slli(t1, u, 3);
    a.add(t2, t1, score_r);
    a.fld(sum, 0, t2);
    a.add(t2, t1, invdeg_r);
    a.fld(tmp, 0, t2);
    a.fmul(sum, sum, tmp);
    a.add(t2, t1, contrib_r);
    a.fsd(sum, 0, t2);
    a.addi(u, u, 1);
    a.j("contrib_loop");
    a.label("contrib_done");

    // score[u] = base + alpha * Σ contrib[v]
    a.li(u, 0);
    a.label("score_loop");
    a.bge(u, n_r, "score_done");
    a.fadd(sum, zero, zero);
    a.slli(t1, u, 3);
    a.add(t2, t1, offs);
    a.ld(i, 0, t2);
    a.ld(end, 8, t2);
    // The branch-free (loop-counter-only) gather loop.
    a.label("gather");
    a.bge(i, end, "gather_done");
    a.slli(t2, i, 2);
    a.add(t2, t2, nbr);
    a.lwu(v, 0, t2);
    a.slli(t2, v, 3);
    a.add(t2, t2, contrib_r);
    a.fld(tmp, 0, t2);
    a.fadd(sum, sum, tmp);
    a.addi(i, i, 1);
    a.j("gather");
    a.label("gather_done");
    a.fmul(sum, sum, alpha);
    a.fadd(sum, sum, base);
    a.add(t2, t1, score_r);
    a.fsd(sum, 0, t2);
    a.addi(u, u, 1);
    a.j("score_loop");
    a.label("score_done");

    a.addi(iter, iter, -1);
    a.bnez(iter, "iteration");
    a.halt();

    let expected = reference_scores(g, iterations);
    Ok(
        Workload::new("pr", a.assemble()?, mem).with_validator(Box::new(move |final_mem| {
            for (vtx, &want) in expected.iter().enumerate() {
                let got = final_mem.read_f64(score + vtx as u64 * 8);
                if (got - want).abs() > 1e-12 {
                    return Err(format!("score[{vtx}] = {got}, expected {want}"));
                }
            }
            Ok(())
        })),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pr_on_triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        pr(&g, 4).unwrap().run_and_validate(100_000).unwrap();
    }

    #[test]
    fn pr_with_dangling_vertex() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        pr(&g, 3).unwrap().run_and_validate(100_000).unwrap();
    }

    #[test]
    fn reference_scores_sum_stays_bounded() {
        let g = Graph::uniform(64, 4, 11);
        let s = reference_scores(&g, 5);
        let total: f64 = s.iter().sum();
        assert!(total > 0.0 && total <= 1.01);
    }
}
