//! Triangle counting (GAP `tc`): sorted-adjacency two-pointer
//! intersection.
//!
//! The paper notes `tc` is "mainly compute bound": its comparisons are
//! branchy but its accesses sweep sorted adjacency lists sequentially, so
//! the data cache behaves well and branch resolution is fast — wrong paths
//! are short.

use super::load_graph;
use crate::graph::Graph;
use crate::layout::DataLayout;
use crate::workload::{Workload, WorkloadError};
use ffsim_emu::Memory;
use ffsim_isa::{Asm, Reg};

/// Reference triangle count (each triangle counted once).
fn reference_count(g: &Graph) -> u64 {
    let mut count = 0u64;
    for u in 0..g.num_vertices() {
        for &v in g.neighbors(u) {
            let v = v as usize;
            if v >= u {
                break;
            }
            // Count common neighbors w < v of u and v.
            let (mut p, mut q) = (0, 0);
            let (nu, nv) = (g.neighbors(u), g.neighbors(v));
            while p < nu.len() && q < nv.len() {
                let (a, b) = (nu[p], nv[q]);
                if a >= v as u32 || b >= v as u32 {
                    break;
                }
                match a.cmp(&b) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        p += 1;
                        q += 1;
                    }
                }
            }
        }
    }
    count
}

/// Builds the triangle-counting workload; the count is stored to a result
/// word checked by the validator.
pub fn tc(g: &Graph) -> Result<Workload, WorkloadError> {
    let n = g.num_vertices() as u64;
    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let img = load_graph(g, &mut mem, &mut layout);
    let result = layout.alloc_u64_zeroed(1);

    let offs = Reg::new(5);
    let nbr = Reg::new(6);
    let count = Reg::new(10);
    let u = Reg::new(11);
    let n_r = Reg::new(12);
    let i = Reg::new(13);
    let end = Reg::new(14);
    let v = Reg::new(15);
    let p = Reg::new(16);
    let q = Reg::new(17);
    let t1 = Reg::new(18);
    let av = Reg::new(19);
    let bv = Reg::new(20);

    let mut a = Asm::new();
    a.li(offs, img.offs as i64);
    a.li(nbr, img.nbr as i64);
    a.li(count, 0);
    a.li(n_r, n as i64);
    a.li(u, 0);

    a.label("vertex");
    a.bge(u, n_r, "done");
    a.slli(t1, u, 3);
    a.add(t1, t1, offs);
    a.ld(i, 0, t1);
    a.ld(end, 8, t1);
    a.label("edge");
    a.bge(i, end, "next_vertex");
    a.slli(t1, i, 2);
    a.add(t1, t1, nbr);
    a.lwu(v, 0, t1);
    a.addi(i, i, 1);
    // Sorted adjacency: once v >= u, no more lower neighbors.
    a.bge(v, u, "next_vertex");
    // Two-pointer intersection of adj(u) and adj(v), elements < v.
    a.slli(t1, u, 3);
    a.add(t1, t1, offs);
    a.ld(p, 0, t1);
    a.slli(t1, v, 3);
    a.add(t1, t1, offs);
    a.ld(q, 0, t1);
    a.label("intersect");
    // a = nbr[p]; stop when a >= v (v itself is in adj(u): terminator).
    a.slli(t1, p, 2);
    a.add(t1, t1, nbr);
    a.lwu(av, 0, t1);
    a.bge(av, v, "edge");
    // b = nbr[q]; stop when b >= v (u > v is in adj(v): terminator).
    a.slli(t1, q, 2);
    a.add(t1, t1, nbr);
    a.lwu(bv, 0, t1);
    a.bge(bv, v, "edge");
    a.blt(av, bv, "adv_p");
    a.blt(bv, av, "adv_q");
    a.addi(count, count, 1);
    a.addi(p, p, 1);
    a.addi(q, q, 1);
    a.j("intersect");
    a.label("adv_p");
    a.addi(p, p, 1);
    a.j("intersect");
    a.label("adv_q");
    a.addi(q, q, 1);
    a.j("intersect");
    a.label("next_vertex");
    a.addi(u, u, 1);
    a.j("vertex");
    a.label("done");
    a.li(t1, result as i64);
    a.sd(count, 0, t1);
    a.halt();

    let expected = reference_count(g);
    Ok(
        Workload::new("tc", a.assemble()?, mem).with_validator(Box::new(move |final_mem| {
            let got = final_mem.read_u64(result);
            if got != expected {
                return Err(format!("triangle count = {got}, expected {expected}"));
            }
            Ok(())
        })),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tc_counts_one_triangle() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(reference_count(&g), 1);
        tc(&g).unwrap().run_and_validate(100_000).unwrap();
    }

    #[test]
    fn tc_counts_k4() {
        // K4 has 4 triangles.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(reference_count(&g), 4);
        tc(&g).unwrap().run_and_validate(100_000).unwrap();
    }

    #[test]
    fn tc_triangle_free() {
        // A star has no triangles.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(reference_count(&g), 0);
        tc(&g).unwrap().run_and_validate(100_000).unwrap();
    }
}
