//! Single-source shortest paths (GAP `sssp`): Bellman-Ford relaxation to
//! a fixed point over integer edge weights.
//!
//! Two data-dependent branches per relaxation (`dist[u] == INF` skip and
//! the `nd < dist[v]` improvement test) plus sparse `dist` accesses.

use super::load_graph;
use crate::graph::Graph;
use crate::layout::DataLayout;
use crate::workload::{Workload, WorkloadError};
use ffsim_emu::Memory;
use ffsim_isa::{Asm, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// "Infinite" distance marker (fits comfortably in 63 bits even after
/// adding a weight).
const INF: u64 = 1 << 40;

/// Per-directed-edge-slot weights, deterministic in `seed`.
fn edge_weights(g: &Graph, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..g.num_edges()).map(|_| rng.gen_range(1..16)).collect()
}

/// Reference shortest distances (Dijkstra over the directed CSR slots).
fn reference_dist(g: &Graph, source: usize, weights: &[u32]) -> Vec<u64> {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    dist[source] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        let lo = g.offsets()[u] as usize;
        for (slot, &v) in g.neighbors(u).iter().enumerate() {
            let nd = d + u64::from(weights[lo + slot]);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v as usize)));
            }
        }
    }
    dist
}

/// Builds the SSSP workload from `source` with weights seeded by `seed`.
///
/// # Errors
///
/// Returns an error if `source` is out of range.
pub fn sssp(g: &Graph, source: usize, seed: u64) -> Result<Workload, WorkloadError> {
    if source >= g.num_vertices() {
        return Err(WorkloadError::InvalidParam("source out of range".into()));
    }
    let n = g.num_vertices() as u64;
    let weights = edge_weights(g, seed);
    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let img = load_graph(g, &mut mem, &mut layout);
    let wgt = layout.alloc_u32_array(&mut mem, &weights);
    let dist_host: Vec<u64> = (0..n as usize)
        .map(|v| if v == source { 0 } else { INF })
        .collect();
    let dist = layout.alloc_u64_array(&mut mem, &dist_host);

    let offs = Reg::new(5);
    let nbr = Reg::new(6);
    let wgt_r = Reg::new(7);
    let dist_r = Reg::new(8);
    let inf = Reg::new(9);
    let changed = Reg::new(10);
    let u = Reg::new(11);
    let n_r = Reg::new(12);
    let i = Reg::new(13);
    let end = Reg::new(14);
    let v = Reg::new(15);
    let du = Reg::new(16);
    let t1 = Reg::new(17);
    let w = Reg::new(18);
    let nd = Reg::new(19);
    let dv = Reg::new(20);

    let mut a = Asm::new();
    a.li(offs, img.offs as i64);
    a.li(nbr, img.nbr as i64);
    a.li(wgt_r, wgt as i64);
    a.li(dist_r, dist as i64);
    a.li(inf, INF as i64);
    a.li(n_r, n as i64);

    a.label("sweep");
    a.li(changed, 0);
    a.li(u, 0);
    a.label("vertex");
    a.bge(u, n_r, "sweep_done");
    // du = dist[u]; skip unreached vertices.
    a.slli(t1, u, 3);
    a.add(t1, t1, dist_r);
    a.ld(du, 0, t1);
    a.bge(du, inf, "next_vertex");
    // i = offs[u]; end = offs[u+1]
    a.slli(t1, u, 3);
    a.add(t1, t1, offs);
    a.ld(i, 0, t1);
    a.ld(end, 8, t1);
    a.label("inner");
    a.bge(i, end, "next_vertex");
    // v = nbr[i]; w = wgt[i]
    a.slli(t1, i, 2);
    a.add(t1, t1, nbr);
    a.lwu(v, 0, t1);
    a.slli(t1, i, 2);
    a.add(t1, t1, wgt_r);
    a.lwu(w, 0, t1);
    a.addi(i, i, 1);
    // nd = du + w; relax if better.
    a.add(nd, du, w);
    a.slli(t1, v, 3);
    a.add(t1, t1, dist_r);
    a.ld(dv, 0, t1);
    a.bge(nd, dv, "inner");
    a.sd(nd, 0, t1);
    a.li(changed, 1);
    a.j("inner");
    a.label("next_vertex");
    a.addi(u, u, 1);
    a.j("vertex");
    a.label("sweep_done");
    a.bnez(changed, "sweep");
    a.halt();

    let expected = reference_dist(g, source, &weights);
    Ok(
        Workload::new("sssp", a.assemble()?, mem).with_validator(Box::new(move |final_mem| {
            for (vtx, &want) in expected.iter().enumerate() {
                let got = final_mem.read_u64(dist + vtx as u64 * 8);
                if got != want {
                    return Err(format!("dist[{vtx}] = {got}, expected {want}"));
                }
            }
            Ok(())
        })),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sssp_on_small_graph() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 3), (3, 2), (2, 4)]);
        sssp(&g, 0, 7).unwrap().run_and_validate(1_000_000).unwrap();
    }

    #[test]
    fn sssp_unreachable_stays_inf() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let w = sssp(&g, 0, 3).unwrap();
        w.run_and_validate(100_000).unwrap();
    }

    #[test]
    fn weights_are_deterministic() {
        let g = Graph::uniform(32, 4, 1);
        assert_eq!(edge_weights(&g, 5), edge_weights(&g, 5));
        assert_ne!(edge_weights(&g, 5), edge_weights(&g, 6));
    }
}
