//! Betweenness centrality (GAP `bc`): Brandes' algorithm from a single
//! source — forward BFS accumulating shortest-path counts, then backward
//! dependency accumulation.
//!
//! The richest GAP kernel: data-dependent branches (visited and level
//! checks), sparse integer and floating-point accesses, and floating-point
//! division. In the paper's evaluation `bc` is the kernel where ignoring
//! the wrong path hurts the most (−22%), and the one where convergence
//! exploitation flips the error slightly positive.

use super::load_graph;
use crate::graph::Graph;
use crate::layout::DataLayout;
use crate::workload::{Workload, WorkloadError};
use ffsim_emu::Memory;
use ffsim_isa::{Asm, FReg, Reg};

/// Reference single-source Brandes pass, mirroring the kernel's queue
/// order exactly. Returns the per-vertex dependency `delta`.
fn reference_delta(g: &Graph, source: usize) -> Vec<f64> {
    let n = g.num_vertices();
    let mut dist = vec![0u64; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut queue = Vec::with_capacity(n);
    dist[source] = 1;
    sigma[source] = 1.0;
    queue.push(source);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let du = dist[u];
        for &v in g.neighbors(u) {
            let v = v as usize;
            if dist[v] == 0 {
                dist[v] = du + 1;
                queue.push(v);
            }
            if dist[v] == du + 1 {
                sigma[v] += sigma[u];
            }
        }
    }
    for idx in (1..queue.len()).rev() {
        let w = queue[idx];
        let dw = dist[w];
        let coef = (1.0 + delta[w]) / sigma[w];
        for &v in g.neighbors(w) {
            let v = v as usize;
            if dist[v] == dw - 1 {
                delta[v] += sigma[v] * coef;
            }
        }
    }
    delta
}

/// Builds the betweenness-centrality workload from `source`.
///
/// # Errors
///
/// Returns an error if `source` is out of range.
pub fn bc(g: &Graph, source: usize) -> Result<Workload, WorkloadError> {
    if source >= g.num_vertices() {
        return Err(WorkloadError::InvalidParam("source out of range".into()));
    }
    let n = g.num_vertices() as u64;
    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let img = load_graph(g, &mut mem, &mut layout);
    let dist = layout.alloc_u64_zeroed(n);
    let sigma = layout.alloc_f64_zeroed(n);
    let delta = layout.alloc_f64_zeroed(n);
    let queue = layout.alloc_u64_zeroed(n);
    let consts = layout.alloc_f64_array(&mut mem, &[1.0]);

    let offs = Reg::new(5);
    let nbr = Reg::new(6);
    let dist_r = Reg::new(7);
    let sigma_r = Reg::new(8);
    let delta_r = Reg::new(9);
    let queue_r = Reg::new(21);
    let head = Reg::new(10);
    let tail = Reg::new(11);
    let u = Reg::new(12); // also `w` in phase 2
    let du = Reg::new(13); // also `dw`
    let i = Reg::new(14);
    let end = Reg::new(15);
    let v = Reg::new(16);
    let t1 = Reg::new(17);
    let dv = Reg::new(18);
    let t3 = Reg::new(19);
    let one_r = Reg::new(20);

    let sigma_u = FReg::new(1);
    let ftmp = FReg::new(2);
    let coef = FReg::new(3);
    let ftmp2 = FReg::new(4);
    let ftmp3 = FReg::new(5);
    let fone = FReg::new(10);

    let mut a = Asm::new();
    a.li(offs, img.offs as i64);
    a.li(nbr, img.nbr as i64);
    a.li(dist_r, dist as i64);
    a.li(sigma_r, sigma as i64);
    a.li(delta_r, delta as i64);
    a.li(queue_r, queue as i64);
    a.li(t1, consts as i64);
    a.fld(fone, 0, t1);
    a.li(one_r, 1);

    // --- Phase 1: BFS with shortest-path counting. ---
    a.li(u, source as i64);
    a.li(head, 0);
    a.li(tail, 1);
    a.slli(t1, u, 3);
    a.add(t1, t1, dist_r);
    a.sd(one_r, 0, t1); // dist[s] = 1
    a.slli(t1, u, 3);
    a.add(t1, t1, sigma_r);
    a.fsd(fone, 0, t1); // sigma[s] = 1.0
    a.sd(u, 0, queue_r); // queue[0] = s

    a.label("fwd_outer");
    a.bge(head, tail, "bwd_init");
    a.slli(t1, head, 3);
    a.add(t1, t1, queue_r);
    a.ld(u, 0, t1);
    a.addi(head, head, 1);
    a.slli(t1, u, 3);
    a.add(t3, t1, dist_r);
    a.ld(du, 0, t3);
    a.add(t3, t1, sigma_r);
    a.fld(sigma_u, 0, t3);
    a.slli(t1, u, 3);
    a.add(t1, t1, offs);
    a.ld(i, 0, t1);
    a.ld(end, 8, t1);
    a.label("fwd_inner");
    a.bge(i, end, "fwd_outer");
    a.slli(t1, i, 2);
    a.add(t1, t1, nbr);
    a.lwu(v, 0, t1);
    a.addi(i, i, 1);
    a.slli(t1, v, 3);
    a.add(t1, t1, dist_r);
    a.ld(dv, 0, t1);
    a.bnez(dv, "fwd_level_check");
    // Unvisited: dist[v] = du+1; enqueue.
    a.addi(dv, du, 1);
    a.sd(dv, 0, t1);
    a.slli(t1, tail, 3);
    a.add(t1, t1, queue_r);
    a.sd(v, 0, t1);
    a.addi(tail, tail, 1);
    a.label("fwd_level_check");
    // if dist[v] == du + 1: sigma[v] += sigma[u]
    a.addi(t3, du, 1);
    a.bne(dv, t3, "fwd_inner");
    a.slli(t1, v, 3);
    a.add(t1, t1, sigma_r);
    a.fld(ftmp, 0, t1);
    a.fadd(ftmp, ftmp, sigma_u);
    a.fsd(ftmp, 0, t1);
    a.j("fwd_inner");

    // --- Phase 2: backward dependency accumulation. ---
    a.label("bwd_init");
    a.addi(head, tail, -1); // head reused as the backward index
    a.label("bwd_outer");
    a.blt(head, one_r, "finish"); // skip the source at index 0
    a.slli(t1, head, 3);
    a.add(t1, t1, queue_r);
    a.ld(u, 0, t1); // u is `w` here
    a.addi(head, head, -1);
    a.slli(t1, u, 3);
    a.add(t3, t1, dist_r);
    a.ld(du, 0, t3); // dw
                     // coef = (1 + delta[w]) / sigma[w]
    a.add(t3, t1, delta_r);
    a.fld(coef, 0, t3);
    a.fadd(coef, coef, fone);
    a.add(t3, t1, sigma_r);
    a.fld(ftmp, 0, t3);
    a.fdiv(coef, coef, ftmp);
    a.addi(t3, du, -1); // dw - 1
    a.slli(t1, u, 3);
    a.add(t1, t1, offs);
    a.ld(i, 0, t1);
    a.ld(end, 8, t1);
    a.label("bwd_inner");
    a.bge(i, end, "bwd_outer");
    a.slli(t1, i, 2);
    a.add(t1, t1, nbr);
    a.lwu(v, 0, t1);
    a.addi(i, i, 1);
    a.slli(t1, v, 3);
    a.add(t1, t1, dist_r);
    a.ld(dv, 0, t1);
    a.bne(dv, t3, "bwd_inner");
    // delta[v] += sigma[v] * coef
    a.slli(t1, v, 3);
    a.add(t1, t1, sigma_r);
    a.fld(ftmp2, 0, t1);
    a.fmul(ftmp2, ftmp2, coef);
    a.slli(t1, v, 3);
    a.add(t1, t1, delta_r);
    a.fld(ftmp3, 0, t1);
    a.fadd(ftmp3, ftmp3, ftmp2);
    a.fsd(ftmp3, 0, t1);
    a.j("bwd_inner");
    a.label("finish");
    a.halt();

    let expected = reference_delta(g, source);
    Ok(
        Workload::new("bc", a.assemble()?, mem).with_validator(Box::new(move |final_mem| {
            for (vtx, &want) in expected.iter().enumerate() {
                let got = final_mem.read_f64(delta + vtx as u64 * 8);
                let tolerance = 1e-9 * want.abs().max(1.0);
                if (got - want).abs() > tolerance {
                    return Err(format!("delta[{vtx}] = {got}, expected {want}"));
                }
            }
            Ok(())
        })),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bc_on_path_graph() {
        // 0-1-2-3: from source 0, delta[1] and delta[2] carry dependencies.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = reference_delta(&g, 0);
        assert!(d[1] > d[2] && d[2] > d[3]);
        bc(&g, 0).unwrap().run_and_validate(1_000_000).unwrap();
    }

    #[test]
    fn bc_on_diamond_splits_paths() {
        // 0-1-3, 0-2-3: two shortest paths to 3; sigma split.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let d = reference_delta(&g, 0);
        assert!((d[1] - d[2]).abs() < 1e-12, "symmetric vertices equal");
        bc(&g, 0).unwrap().run_and_validate(1_000_000).unwrap();
    }

    #[test]
    fn bc_with_unreachable_component() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        bc(&g, 0).unwrap().run_and_validate(1_000_000).unwrap();
    }
}
