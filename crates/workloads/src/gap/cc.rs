//! Connected components (GAP `cc`): label propagation to the minimum
//! vertex id, iterated to a fixed point.
//!
//! The inner-loop `if comp[v] < comp[u]` comparison is a data-dependent
//! branch over sparsely accessed labels.

use super::load_graph;
use crate::graph::Graph;
use crate::layout::DataLayout;
use crate::workload::{Workload, WorkloadError};
use ffsim_emu::Memory;
use ffsim_isa::{Asm, Reg};

/// Reference: minimum vertex id per connected component.
fn reference_components(g: &Graph) -> Vec<u64> {
    let n = g.num_vertices();
    let mut comp: Vec<u64> = (0..n as u64).collect();
    // Simple BFS per component from ascending ids.
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let label = comp[start].min(start as u64);
        let mut stack = vec![start];
        visited[start] = true;
        while let Some(u) = stack.pop() {
            comp[u] = label;
            for &v in g.neighbors(u) {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    stack.push(v as usize);
                }
            }
        }
    }
    comp
}

/// Builds the connected-components workload.
pub fn cc(g: &Graph) -> Result<Workload, WorkloadError> {
    let n = g.num_vertices() as u64;
    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let img = load_graph(g, &mut mem, &mut layout);
    let comp_host: Vec<u64> = (0..n).collect();
    let comp = layout.alloc_u64_array(&mut mem, &comp_host);

    let offs = Reg::new(5);
    let nbr = Reg::new(6);
    let comp_r = Reg::new(7);
    let changed = Reg::new(10);
    let u = Reg::new(11);
    let n_r = Reg::new(12);
    let i = Reg::new(13);
    let end = Reg::new(14);
    let v = Reg::new(15);
    let cu = Reg::new(16);
    let t1 = Reg::new(17);
    let cv = Reg::new(18);

    let mut a = Asm::new();
    a.li(offs, img.offs as i64);
    a.li(nbr, img.nbr as i64);
    a.li(comp_r, comp as i64);
    a.li(n_r, n as i64);

    a.label("sweep");
    a.li(changed, 0);
    a.li(u, 0);
    a.label("vertex");
    a.bge(u, n_r, "sweep_done");
    // cu = comp[u]
    a.slli(t1, u, 3);
    a.add(t1, t1, comp_r);
    a.ld(cu, 0, t1);
    // i = offs[u]; end = offs[u+1]
    a.slli(t1, u, 3);
    a.add(t1, t1, offs);
    a.ld(i, 0, t1);
    a.ld(end, 8, t1);
    a.label("inner");
    a.bge(i, end, "flush");
    a.slli(t1, i, 2);
    a.add(t1, t1, nbr);
    a.lwu(v, 0, t1);
    a.addi(i, i, 1);
    // cv = comp[v]; the data-dependent branch
    a.slli(t1, v, 3);
    a.add(t1, t1, comp_r);
    a.ld(cv, 0, t1);
    a.bge(cv, cu, "inner");
    a.mv(cu, cv);
    a.li(changed, 1);
    a.j("inner");
    a.label("flush");
    a.slli(t1, u, 3);
    a.add(t1, t1, comp_r);
    a.sd(cu, 0, t1);
    a.addi(u, u, 1);
    a.j("vertex");
    a.label("sweep_done");
    a.bnez(changed, "sweep");
    a.halt();

    let expected = reference_components(g);
    Ok(
        Workload::new("cc", a.assemble()?, mem).with_validator(Box::new(move |final_mem| {
            for (vtx, &want) in expected.iter().enumerate() {
                let got = final_mem.read_u64(comp + vtx as u64 * 8);
                if got != want {
                    return Err(format!("comp[{vtx}] = {got}, expected {want}"));
                }
            }
            Ok(())
        })),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc_two_components() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        cc(&g).unwrap().run_and_validate(1_000_000).unwrap();
    }

    #[test]
    fn cc_single_chain_needs_propagation() {
        // A long chain forces several label-propagation sweeps.
        let edges: Vec<(u32, u32)> = (0..19).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(20, &edges);
        cc(&g).unwrap().run_and_validate(1_000_000).unwrap();
    }

    #[test]
    fn reference_labels_min_id() {
        let g = Graph::from_edges(5, &[(3, 4), (1, 2)]);
        assert_eq!(reference_components(&g), vec![0, 1, 1, 3, 3]);
    }
}
