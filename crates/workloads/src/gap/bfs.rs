//! Breadth-first search (GAP `bfs`): queue-based top-down traversal.
//!
//! The inner loop's `if dist[v] == 0` visited check is a data-dependent
//! branch over a sparsely-accessed array — the canonical wrong-path
//! stressor. `dist` holds `level + 1` so that zero means "unvisited" in
//! zero-initialized memory.

use super::load_graph;
use crate::graph::Graph;
use crate::layout::DataLayout;
use crate::workload::{Workload, WorkloadError};
use ffsim_emu::Memory;
use ffsim_isa::{Asm, Reg};

/// Reference BFS: `dist[v] = level + 1`, 0 if unreachable.
fn reference_dist(g: &Graph, source: usize) -> Vec<u64> {
    let mut dist = vec![0u64; g.num_vertices()];
    let mut queue = std::collections::VecDeque::new();
    dist[source] = 1;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v as usize] == 0 {
                dist[v as usize] = dist[u] + 1;
                queue.push_back(v as usize);
            }
        }
    }
    dist
}

/// Builds the BFS workload from `source`.
///
/// # Errors
///
/// Returns an error if `source` is out of range.
pub fn bfs(g: &Graph, source: usize) -> Result<Workload, WorkloadError> {
    if source >= g.num_vertices() {
        return Err(WorkloadError::InvalidParam("source out of range".into()));
    }
    let n = g.num_vertices() as u64;
    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let img = load_graph(g, &mut mem, &mut layout);
    let dist = layout.alloc_u64_zeroed(n);
    let queue = layout.alloc_u64_zeroed(n);

    let offs = Reg::new(5);
    let nbr = Reg::new(6);
    let dist_r = Reg::new(7);
    let queue_r = Reg::new(8);
    let head = Reg::new(10);
    let tail = Reg::new(11);
    let u = Reg::new(12);
    let du = Reg::new(13);
    let i = Reg::new(14);
    let end = Reg::new(15);
    let v = Reg::new(16);
    let t1 = Reg::new(17);
    let t2 = Reg::new(18);

    let mut a = Asm::new();
    a.li(offs, img.offs as i64);
    a.li(nbr, img.nbr as i64);
    a.li(dist_r, dist as i64);
    a.li(queue_r, queue as i64);
    // dist[source] = 1; queue[0] = source; head = 0; tail = 1.
    a.li(u, source as i64);
    a.li(head, 0);
    a.li(tail, 1);
    a.slli(t1, u, 3);
    a.add(t1, t1, dist_r);
    a.li(t2, 1);
    a.sd(t2, 0, t1);
    a.sd(u, 0, queue_r);

    a.label("outer");
    a.bge(head, tail, "done");
    // u = queue[head++]
    a.slli(t1, head, 3);
    a.add(t1, t1, queue_r);
    a.ld(u, 0, t1);
    a.addi(head, head, 1);
    // du = dist[u]
    a.slli(t1, u, 3);
    a.add(t1, t1, dist_r);
    a.ld(du, 0, t1);
    // i = offs[u]; end = offs[u+1]
    a.slli(t1, u, 3);
    a.add(t1, t1, offs);
    a.ld(i, 0, t1);
    a.ld(end, 8, t1);
    a.label("inner");
    a.bge(i, end, "outer");
    // v = nbr[i++]
    a.slli(t1, i, 2);
    a.add(t1, t1, nbr);
    a.lwu(v, 0, t1);
    a.addi(i, i, 1);
    // visited check: the data-dependent branch
    a.slli(t1, v, 3);
    a.add(t1, t1, dist_r);
    a.ld(t2, 0, t1);
    a.bnez(t2, "inner");
    // dist[v] = du + 1
    a.addi(t2, du, 1);
    a.sd(t2, 0, t1);
    // queue[tail++] = v
    a.slli(t1, tail, 3);
    a.add(t1, t1, queue_r);
    a.sd(v, 0, t1);
    a.addi(tail, tail, 1);
    a.j("inner");
    a.label("done");
    a.halt();

    let expected = reference_dist(g, source);
    Ok(
        Workload::new("bfs", a.assemble()?, mem).with_validator(Box::new(move |final_mem| {
            for (vtx, &want) in expected.iter().enumerate() {
                let got = final_mem.read_u64(dist + vtx as u64 * 8);
                if got != want {
                    return Err(format!("dist[{vtx}] = {got}, expected {want}"));
                }
            }
            Ok(())
        })),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_on_path_graph() {
        // 0-1-2-3: distances 1,2,3,4.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let w = bfs(&g, 0).unwrap();
        w.run_and_validate(10_000).unwrap();
    }

    #[test]
    fn bfs_with_unreachable_vertices() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let w = bfs(&g, 0).unwrap();
        w.run_and_validate(10_000).unwrap();
    }

    #[test]
    fn reference_matches_hand_computation() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (2, 3)]);
        assert_eq!(reference_dist(&g, 0), vec![1, 2, 2, 3]);
    }
}
