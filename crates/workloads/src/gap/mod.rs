//! The GAP benchmark suite kernels (Beamer et al.), hand-written in the
//! simulator's ISA over CSR graphs in simulated memory.
//!
//! The paper evaluates its wrong-path techniques on GAP because graph
//! analytics has exactly the traits that stress wrong-path modeling
//! (§IV): high branch miss rates from data-dependent branches, high data
//! cache miss rates from sparse accesses, and *converging code* — each
//! inner-loop iteration applies the same function to the next neighbor or
//! vertex, so a mispredicted branch's wrong path rejoins the correct path
//! within a ROB's worth of instructions.
//!
//! All six kernels are provided: `bc`, `bfs`, `cc`, `pr`, `sssp`, `tc`.
//! Every kernel carries a validator that compares the simulated results
//! against a Rust reference implementation.

mod bc;
mod bfs;
mod cc;
mod pr;
mod sssp;
mod tc;

pub use bc::bc;
pub use bfs::bfs;
pub use cc::cc;
pub use pr::pr;
pub use sssp::sssp;
pub use tc::tc;

use crate::graph::Graph;
use crate::layout::DataLayout;
use crate::workload::Workload;
use ffsim_emu::Memory;
use ffsim_isa::Addr;

/// Simulated-memory addresses of a loaded CSR graph.
#[derive(Clone, Copy, Debug)]
pub(crate) struct GraphImage {
    /// `u64[n+1]` neighbor-array offsets.
    pub offs: Addr,
    /// `u32[m]` neighbor vertex ids.
    pub nbr: Addr,
}

/// Writes the CSR arrays into simulated memory.
pub(crate) fn load_graph(g: &Graph, mem: &mut Memory, layout: &mut DataLayout) -> GraphImage {
    let offs = layout.alloc_u64_array(mem, g.offsets());
    let nbr = layout.alloc_u32_array(mem, g.neighbor_array());
    GraphImage { offs, nbr }
}

/// Builds all six GAP kernels over a shared RMAT graph, in the paper's
/// alphabetical order (bc, bfs, cc, pr, sssp, tc).
///
/// `scale` is the log2 vertex count; `avg_degree` the average degree.
/// The BFS/SSSP/BC source is the maximum-degree vertex, mirroring GAP's
/// preference for high-degree sources on skewed graphs.
#[must_use]
pub fn all_gap(scale: u32, avg_degree: usize, seed: u64) -> Vec<Workload> {
    let g = Graph::rmat(1 << scale, avg_degree, seed);
    let src = g.max_degree_vertex();
    // Internal invariant: the canonical parameters used here are always in
    // range for every kernel, so construction cannot fail.
    let ok =
        |w: Result<Workload, crate::WorkloadError>| w.expect("canonical GAP parameters are valid");
    vec![
        ok(bc(&g, src)),
        ok(bfs(&g, src)),
        ok(cc(&g)),
        ok(pr(&g, 3)),
        ok(sssp(&g, src, seed ^ 0x5551)),
        ok(tc(&g)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every GAP kernel halts and computes results matching its Rust
    /// reference on a small RMAT graph.
    #[test]
    fn all_kernels_validate_on_rmat() {
        for w in all_gap(8, 8, 42) {
            let n = w
                .run_and_validate(20_000_000)
                .unwrap_or_else(|e| panic!("{e}"));
            assert!(n > 1000, "{} ran only {n} instructions", w.name());
        }
    }

    /// And on a uniform graph with a different seed.
    #[test]
    fn all_kernels_validate_on_uniform() {
        let g = Graph::uniform(300, 6, 7);
        let src = g.max_degree_vertex();
        let workloads = vec![
            bc(&g, src).unwrap(),
            bfs(&g, src).unwrap(),
            cc(&g).unwrap(),
            pr(&g, 2).unwrap(),
            sssp(&g, src, 99).unwrap(),
            tc(&g).unwrap(),
        ];
        for w in workloads {
            w.run_and_validate(20_000_000)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    /// Kernels behave on degenerate graphs (isolated vertices).
    #[test]
    fn kernels_handle_sparse_components() {
        let g = Graph::from_edges(16, &[(0, 1), (1, 2), (4, 5)]);
        for w in [
            bc(&g, 0).unwrap(),
            bfs(&g, 0).unwrap(),
            cc(&g).unwrap(),
            pr(&g, 2).unwrap(),
            sssp(&g, 0, 1).unwrap(),
            tc(&g).unwrap(),
        ] {
            w.run_and_validate(1_000_000)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}
