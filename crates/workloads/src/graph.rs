//! Synthetic graph generation (uniform and RMAT/Kronecker) with CSR
//! representation — the input substrate for the GAP benchmark kernels.
//!
//! The paper evaluates on the GAP benchmark suite over large real-world
//! and synthetic graphs; this module generates the synthetic equivalent:
//! RMAT (Kronecker) graphs with the skewed degree distributions that give
//! graph analytics its data-dependent branches and sparse irregular
//! accesses, plus uniform random graphs as a contrast.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected graph in CSR (compressed sparse row) form with sorted
/// adjacency lists.
///
/// # Examples
///
/// ```
/// use ffsim_workloads::Graph;
/// let g = Graph::uniform(128, 4, 42);
/// assert_eq!(g.num_vertices(), 128);
/// assert!(g.num_edges() > 0);
/// for v in g.neighbors(0) { assert!((*v as usize) < 128); }
/// ```
#[derive(Clone, Debug)]
pub struct Graph {
    offsets: Vec<u64>,
    neighbors: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an edge list, symmetrizing, deduplicating and
    /// sorting adjacency lists.
    #[must_use]
    pub fn from_edges(num_vertices: usize, edges: &[(u32, u32)]) -> Graph {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); num_vertices];
        for &(u, v) in edges {
            let (u, v) = (u as usize, v as usize);
            if u == v || u >= num_vertices || v >= num_vertices {
                continue;
            }
            adj[u].push(v as u32);
            adj[v].push(u as u32);
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len() as u64);
        }
        Graph { offsets, neighbors }
    }

    /// A uniform (Erdős–Rényi-style) random graph with `num_vertices`
    /// vertices and about `avg_degree * num_vertices / 2` undirected
    /// edges, deterministic in `seed`.
    #[must_use]
    pub fn uniform(num_vertices: usize, avg_degree: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let target = num_vertices * avg_degree / 2;
        let edges: Vec<(u32, u32)> = (0..target)
            .map(|_| {
                (
                    rng.gen_range(0..num_vertices as u32),
                    rng.gen_range(0..num_vertices as u32),
                )
            })
            .collect();
        Graph::from_edges(num_vertices, &edges)
    }

    /// An RMAT (Kronecker) graph with the GAP-standard parameters
    /// (a, b, c) = (0.57, 0.19, 0.19): skewed degrees, community
    /// structure, the canonical graph-analytics stressor. `num_vertices`
    /// is rounded up to a power of two.
    #[must_use]
    pub fn rmat(num_vertices: usize, avg_degree: usize, seed: u64) -> Graph {
        let n = num_vertices.next_power_of_two();
        let scale = n.trailing_zeros();
        let mut rng = StdRng::seed_from_u64(seed);
        let target = n * avg_degree / 2;
        let (a, b, c) = (0.57, 0.19, 0.19);
        let edges: Vec<(u32, u32)> = (0..target)
            .map(|_| {
                let (mut u, mut v) = (0u32, 0u32);
                for _ in 0..scale {
                    u <<= 1;
                    v <<= 1;
                    let r: f64 = rng.gen();
                    if r < a {
                        // top-left quadrant: no bits set
                    } else if r < a + b {
                        v |= 1;
                    } else if r < a + b + c {
                        u |= 1;
                    } else {
                        u |= 1;
                        v |= 1;
                    }
                }
                (u, v)
            })
            .collect();
        Graph::from_edges(n, &edges)
    }

    /// Number of vertices.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edge slots (2× undirected edges).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// The CSR offsets array (`num_vertices + 1` entries).
    #[must_use]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The CSR neighbors array.
    #[must_use]
    pub fn neighbor_array(&self) -> &[u32] {
        &self.neighbors
    }

    /// The sorted neighbor list of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// The degree of vertex `u`.
    #[must_use]
    pub fn degree(&self, u: usize) -> usize {
        self.neighbors(u).len()
    }

    /// The vertex with the highest degree (a good BFS/SSSP/BC source on
    /// skewed graphs — mirrors GAP's choice of high-degree sources).
    #[must_use]
    pub fn max_degree_vertex(&self) -> usize {
        (0..self.num_vertices())
            .max_by_key(|&u| self.degree(u))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_is_consistent() {
        let g = Graph::uniform(100, 8, 1);
        assert_eq!(g.offsets().len(), 101);
        assert_eq!(*g.offsets().last().unwrap() as usize, g.num_edges());
        let total: usize = (0..100).map(|u| g.degree(u)).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn symmetric_and_loop_free() {
        let g = Graph::uniform(64, 6, 7);
        for u in 0..64 {
            for &v in g.neighbors(u) {
                assert_ne!(v as usize, u, "no self loops");
                assert!(
                    g.neighbors(v as usize).contains(&(u as u32)),
                    "edge ({u},{v}) missing its reverse"
                );
            }
        }
    }

    #[test]
    fn adjacency_sorted_and_deduped() {
        let g = Graph::rmat(256, 8, 3);
        for u in 0..g.num_vertices() {
            let n = g.neighbors(u);
            assert!(n.windows(2).all(|w| w[0] < w[1]), "vertex {u} not sorted");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Graph::rmat(512, 8, 99);
        let b = Graph::rmat(512, 8, 99);
        assert_eq!(a.offsets(), b.offsets());
        assert_eq!(a.neighbor_array(), b.neighbor_array());
        let c = Graph::rmat(512, 8, 100);
        assert_ne!(a.neighbor_array(), c.neighbor_array());
    }

    #[test]
    fn rmat_is_skewed() {
        let g = Graph::rmat(1024, 16, 5);
        let max_deg = (0..g.num_vertices()).map(|u| g.degree(u)).max().unwrap();
        let avg = g.num_edges() / g.num_vertices();
        assert!(
            max_deg > 4 * avg,
            "RMAT should have heavy-tail degrees: max {max_deg}, avg {avg}"
        );
        assert_eq!(g.max_degree_vertex(), g.max_degree_vertex());
    }

    #[test]
    fn from_edges_ignores_invalid() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 1), (2, 9), (1, 0)]);
        assert_eq!(g.num_edges(), 2); // only 0–1, symmetrized, deduped
    }
}
