//! # ffsim-workloads — benchmark programs for the wrong-path simulator
//!
//! The workloads evaluated by *“Simulating Wrong-Path Instructions in
//! Decoupled Functional-First Simulation”* (Eyerman et al., ISPASS 2023),
//! rebuilt as synthetic equivalents for this repository's custom ISA:
//!
//! * [`gap`] — the six GAP benchmark kernels (bc, bfs, cc, pr, sssp, tc)
//!   hand-written in assembly over synthetic RMAT/uniform graphs
//!   ([`Graph`]), the paper's branch-miss-heavy, converging workloads;
//! * [`speclike`] — a SPEC-CPU-2017-like suite of INT and FP kernels
//!   reproducing the error *distribution* of the paper's Fig. 4;
//! * [`Workload`] — program + memory image + result validator; every
//!   bundled kernel checks its output against a Rust reference.
//!
//! # Examples
//!
//! ```
//! use ffsim_workloads::{gap, Graph};
//! let g = Graph::rmat(256, 8, 42);
//! let w = gap::bfs(&g, g.max_degree_vertex())?;
//! let instructions = w.run_and_validate(10_000_000)?;
//! assert!(instructions > 1_000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gap;
mod graph;
mod layout;
pub mod speclike;
mod workload;

pub use graph::Graph;
pub use layout::{DataLayout, DATA_BASE};
pub use workload::{Validator, Workload, WorkloadError};
