//! The [`Workload`] type: a program plus its initial memory image and an
//! optional result validator.

use ffsim_emu::{Emulator, Memory, StepError};
use ffsim_isa::{AsmError, Program};
use std::fmt;

/// Why a workload could not be built: a nonsense kernel parameter, or an
/// assembly failure in the generated program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WorkloadError {
    /// A kernel parameter is out of range (the message names it).
    InvalidParam(String),
    /// The generated kernel failed to assemble.
    Assembly(AsmError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidParam(msg) => write!(f, "invalid workload parameter: {msg}"),
            WorkloadError::Assembly(e) => write!(f, "workload failed to assemble: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Assembly(e) => Some(e),
            WorkloadError::InvalidParam(_) => None,
        }
    }
}

impl From<AsmError> for WorkloadError {
    fn from(e: AsmError) -> WorkloadError {
        WorkloadError::Assembly(e)
    }
}

/// A result validator: inspects the final memory image and reports what,
/// if anything, is wrong.
pub type Validator = Box<dyn Fn(&Memory) -> Result<(), String> + Send + Sync>;

/// A runnable workload: an assembled program, its initial data segments,
/// and (optionally) a checker for the computed results.
///
/// Validators make the hand-written assembly kernels trustworthy: every
/// bundled workload can be executed functionally and its output compared
/// against a Rust reference implementation.
pub struct Workload {
    name: String,
    program: Program,
    memory: Memory,
    validator: Option<Validator>,
}

impl Workload {
    /// Creates a workload without a validator.
    #[must_use]
    pub fn new(name: impl Into<String>, program: Program, memory: Memory) -> Workload {
        Workload {
            name: name.into(),
            program,
            memory,
            validator: None,
        }
    }

    /// Attaches a result validator.
    #[must_use]
    pub fn with_validator(mut self, v: Validator) -> Workload {
        self.validator = Some(v);
        self
    }

    /// The workload's name (used in experiment tables).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The assembled program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The initial memory image.
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Whether a validator is attached.
    #[must_use]
    pub fn has_validator(&self) -> bool {
        self.validator.is_some()
    }

    /// Checks computed results in `final_memory` against the reference.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch. Workloads without a
    /// validator always pass.
    pub fn validate(&self, final_memory: &Memory) -> Result<(), String> {
        match &self.validator {
            Some(v) => v(final_memory),
            None => Ok(()),
        }
    }

    /// Runs the workload functionally (no timing) and validates the
    /// results. Returns the number of instructions executed.
    ///
    /// # Errors
    ///
    /// Returns an error on a fault, on exceeding `max_steps` without
    /// halting, or on validation failure.
    pub fn run_and_validate(&self, max_steps: u64) -> Result<u64, String> {
        let mut emu = Emulator::with_memory(self.program.clone(), self.memory.clone())
            .map_err(|e| format!("{}: {e}", self.name))?;
        let n = emu.run_to_halt(max_steps).map_err(|e| match e {
            StepError::Fault(f) => format!("{}: fault: {f}", self.name),
            StepError::Cancelled(cause) => format!("{}: {cause}", self.name),
            StepError::Halted => unreachable!("run_to_halt never returns Halted"),
        })?;
        if !emu.is_halted() {
            return Err(format!(
                "{}: did not halt within {max_steps} instructions",
                self.name
            ));
        }
        self.validate(emu.mem())
            .map_err(|e| format!("{}: {e}", self.name))?;
        Ok(n)
    }
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("instructions", &self.program.len())
            .field("has_validator", &self.validator.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsim_isa::{Asm, Reg};

    fn store42() -> (Program, Memory) {
        let mut a = Asm::new();
        a.li(Reg::new(1), 0x1000_0000);
        a.li(Reg::new(2), 42);
        a.sd(Reg::new(2), 0, Reg::new(1));
        a.halt();
        (a.assemble().unwrap(), Memory::new())
    }

    #[test]
    fn validator_passes_and_fails() {
        let (p, m) = store42();
        let good = Workload::new("good", p.clone(), m.clone()).with_validator(Box::new(|mem| {
            (mem.read_u64(0x1000_0000) == 42)
                .then_some(())
                .ok_or_else(|| "expected 42".into())
        }));
        assert_eq!(good.run_and_validate(100), Ok(4));

        let bad = Workload::new("bad", p, m).with_validator(Box::new(|mem| {
            (mem.read_u64(0x1000_0000) == 43)
                .then_some(())
                .ok_or_else(|| "expected 43".into())
        }));
        assert!(bad.run_and_validate(100).is_err());
    }

    #[test]
    fn step_budget_is_enforced() {
        let (p, m) = store42();
        let w = Workload::new("w", p, m);
        assert!(w.run_and_validate(2).is_err());
    }

    #[test]
    fn workload_without_validator_passes() {
        let (p, m) = store42();
        let w = Workload::new("w", p, m);
        assert!(!w.has_validator());
        assert!(w.run_and_validate(100).is_ok());
    }
}
