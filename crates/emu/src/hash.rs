//! A minimal multiply-rotate hasher for the simulator's hot lookup maps.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! DoS-resistant, which the simulator does not need: its hot maps are
//! keyed by *program addresses* — small, trusted integers derived from the
//! workload's own text segment. Profiling (`perf_attrib`) showed the
//! per-lookup SipHash cost dominating the instruction-reconstruction and
//! convergence code caches, so those maps (and the basic-block cache) use
//! this hasher instead. The construction is the familiar
//! rotate-xor-multiply mix used by rustc's FxHash family; it is **not**
//! collision-resistant against adversarial keys and must only be used for
//! trusted-key maps.

use std::hash::{BuildHasherDefault, Hasher};

/// [`std::hash::BuildHasher`] producing [`FxHasher`]s — drop this into the
/// third type parameter of a `HashMap` whose keys are trusted integers.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Multiplicative mix constant (the 64-bit golden-ratio-derived constant
/// used by the FxHash family).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: a single 64-bit accumulator.
#[derive(Clone, Copy, Default, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path for composite keys: fold 8-byte words, then the
        // tail. Hot paths use the fixed-width methods below.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let mut tail = 0u64;
        for (i, &b) in chunks.remainder().iter().enumerate() {
            tail |= u64::from(b) << (8 * i);
        }
        if !chunks.remainder().is_empty() {
            self.add(tail);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn map_roundtrips_addresses() {
        let mut m: HashMap<u64, u32, FxBuildHasher> = HashMap::default();
        for pc in (0x1_0000u64..0x1_1000).step_by(4) {
            m.insert(pc, (pc & 0xffff) as u32);
        }
        assert_eq!(m.len(), 0x1000 / 4);
        assert_eq!(m.get(&0x1_0004), Some(&0x0004));
        assert_eq!(m.get(&0x2_0000), None);
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        // Word-aligned pcs differing only in low bits must not collide in
        // the upper bits the hashmap consumes.
        assert_ne!(h(0x1_0000) >> 32, h(0x1_0004) >> 32);
    }

    #[test]
    fn generic_write_handles_tails() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_ne!(h(b"abcdefgh"), h(b"abcdefg"));
        assert_ne!(h(b"abcdefghi"), h(b"abcdefgh"));
    }
}
