//! Sparse, paged data memory for the functional emulator.
//!
//! Memory is a flat 64-bit byte-addressed space backed by 4 KiB pages that
//! are allocated on first write. Reads of never-written locations return
//! zero, like anonymous mmap'd memory; this keeps workload setup simple and
//! means wrong-path loads from wild addresses are always well-defined (they
//! read zeros) instead of faulting — matching the paper's requirement that
//! wrong-path emulation never perturbs functional state.

use ffsim_isa::Addr;
use std::collections::HashMap;

/// Bytes per backing page.
pub const PAGE_BYTES: usize = 4096;

const PAGE_SHIFT: u32 = 12;
const PAGE_MASK: u64 = PAGE_BYTES as u64 - 1;

/// Sparse paged byte-addressable memory.
///
/// # Examples
///
/// ```
/// use ffsim_emu::Memory;
/// let mut m = Memory::new();
/// m.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u64(0x9_0000), 0, "untouched memory reads as zero");
/// ```
#[derive(Clone, Default, Debug)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl Memory {
    /// Creates an empty memory (all zeros).
    #[must_use]
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of pages that have been materialized by writes.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads a single byte.
    #[must_use]
    pub fn read_u8(&self, addr: Addr) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes a single byte, materializing the page if needed.
    pub fn write_u8(&mut self, addr: Addr, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    ///
    /// Accesses may straddle page boundaries.
    #[must_use]
    pub fn read_bytes<const N: usize>(&self, addr: Addr) -> [u8; N] {
        let mut out = [0u8; N];
        // Fast path: fully inside one page.
        let off = (addr & PAGE_MASK) as usize;
        if off + N <= PAGE_BYTES {
            if let Some(p) = self.pages.get(&(addr >> PAGE_SHIFT)) {
                out.copy_from_slice(&p[off..off + N]);
            }
            return out;
        }
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
        out
    }

    /// Writes `N` little-endian bytes starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        let off = (addr & PAGE_MASK) as usize;
        if off + bytes.len() <= PAGE_BYTES {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
            page[off..off + bytes.len()].copy_from_slice(bytes);
            return;
        }
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Reads a little-endian `u16`.
    #[must_use]
    pub fn read_u16(&self, addr: Addr) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u32`.
    #[must_use]
    pub fn read_u32(&self, addr: Addr) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: Addr) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads an `f64` (IEEE-754 bits, little-endian).
    #[must_use]
    pub fn read_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: Addr, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: Addr, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes an `f64` (IEEE-754 bits, little-endian).
    pub fn write_f64(&mut self, addr: Addr, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Reads `width` bytes as a zero-extended `u64` (width ∈ {1,2,4,8}).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    #[must_use]
    pub fn read_uint(&self, addr: Addr, width: u64) -> u64 {
        match width {
            1 => u64::from(self.read_u8(addr)),
            2 => u64::from(self.read_u16(addr)),
            4 => u64::from(self.read_u32(addr)),
            8 => self.read_u64(addr),
            w => panic!("unsupported access width {w}"),
        }
    }

    /// Writes the low `width` bytes of `value` (width ∈ {1,2,4,8}).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn write_uint(&mut self, addr: Addr, width: u64, value: u64) {
        match width {
            1 => self.write_u8(addr, value as u8),
            2 => self.write_u16(addr, value as u16),
            4 => self.write_u32(addr, value as u32),
            8 => self.write_u64(addr, value),
            w => panic!("unsupported access width {w}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.read_u8(u64::MAX), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn roundtrip_all_widths() {
        let mut m = Memory::new();
        m.write_u8(0x10, 0xab);
        m.write_u16(0x20, 0xbeef);
        m.write_u32(0x30, 0xdead_beef);
        m.write_u64(0x40, 0x0123_4567_89ab_cdef);
        m.write_f64(0x50, -2.5);
        assert_eq!(m.read_u8(0x10), 0xab);
        assert_eq!(m.read_u16(0x20), 0xbeef);
        assert_eq!(m.read_u32(0x30), 0xdead_beef);
        assert_eq!(m.read_u64(0x40), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_f64(0x50), -2.5);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0x100, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 1);
        assert_eq!(m.read_u8(0x103), 4);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_BYTES as u64 - 4; // straddles first/second page
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn read_uint_widths() {
        let mut m = Memory::new();
        m.write_u64(0x200, 0xffff_ffff_ffff_ffff);
        assert_eq!(m.read_uint(0x200, 1), 0xff);
        assert_eq!(m.read_uint(0x200, 2), 0xffff);
        assert_eq!(m.read_uint(0x200, 4), 0xffff_ffff);
        assert_eq!(m.read_uint(0x200, 8), u64::MAX);
    }

    #[test]
    fn write_uint_partial() {
        let mut m = Memory::new();
        m.write_u64(0x300, u64::MAX);
        m.write_uint(0x300, 2, 0);
        assert_eq!(m.read_u64(0x300), 0xffff_ffff_ffff_0000);
    }

    #[test]
    #[should_panic(expected = "unsupported access width")]
    fn bad_width_panics() {
        let _ = Memory::new().read_uint(0, 3);
    }
}
