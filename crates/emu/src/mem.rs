//! Sparse, paged data memory for the functional emulator.
//!
//! Memory is a flat 64-bit byte-addressed space backed by 4 KiB pages that
//! are allocated on first write. Reads of never-written locations return
//! zero, like anonymous mmap'd memory; this keeps workload setup simple and
//! means wrong-path loads from wild addresses are always well-defined (they
//! read zeros) instead of faulting — matching the paper's requirement that
//! wrong-path emulation never perturbs functional state.

use crate::hash::FxBuildHasher;
use ffsim_isa::Addr;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Bytes per backing page.
pub const PAGE_BYTES: usize = 4096;

const PAGE_SHIFT: u32 = 12;
const PAGE_MASK: u64 = PAGE_BYTES as u64 - 1;

/// A write was refused because it would materialize a page past the
/// configured [`Memory::set_page_limit`] bound.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemoryLimitError {
    /// The address whose page could not be materialized.
    pub addr: Addr,
    /// The configured page-count limit.
    pub limit: usize,
}

impl fmt::Display for MemoryLimitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "write to {:#x} exceeds the {}-page memory limit",
            self.addr, self.limit
        )
    }
}

impl Error for MemoryLimitError {}

/// Sparse paged byte-addressable memory.
///
/// # Examples
///
/// ```
/// use ffsim_emu::Memory;
/// let mut m = Memory::new();
/// m.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u64(0x9_0000), 0, "untouched memory reads as zero");
/// ```
#[derive(Clone, Default, Debug)]
pub struct Memory {
    // Fx-hashed: every emulated load probes this map, and `digest()` sorts
    // page indices, so the hasher never shows in results.
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>, FxBuildHasher>,
    page_limit: Option<usize>,
}

impl Memory {
    /// Creates an empty memory (all zeros).
    #[must_use]
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Creates an empty memory that refuses to materialize more than
    /// `limit` pages (see [`Memory::set_page_limit`]).
    #[must_use]
    pub fn with_page_limit(limit: usize) -> Memory {
        Memory {
            pages: HashMap::default(),
            page_limit: Some(limit),
        }
    }

    /// Bounds the sparse page map to at most `limit` resident pages.
    ///
    /// Once the limit is reached, writes that would materialize a new page
    /// fail ([`Memory::try_write_bytes`]) — the emulator surfaces them as
    /// [`Fault::OutOfRange`](crate::Fault::OutOfRange). Writes to already
    /// resident pages still succeed; reads are unaffected (never-written
    /// memory reads as zero without allocating). Pages already resident
    /// above the limit stay resident.
    pub fn set_page_limit(&mut self, limit: Option<usize>) {
        self.page_limit = limit;
    }

    /// The configured page-count bound, if any.
    #[must_use]
    pub fn page_limit(&self) -> Option<usize> {
        self.page_limit
    }

    /// Number of pages that have been materialized by writes.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// A 64-bit FNV-1a digest of the logical memory contents.
    ///
    /// Pages are folded in ascending address order and all-zero pages are
    /// skipped, so the digest depends only on observable contents — two
    /// memories that read identically digest identically regardless of
    /// which pages happen to be resident. Used by the fault-injection
    /// harness to assert bit-identical final state across runs.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut indices: Vec<u64> = self
            .pages
            .iter()
            .filter(|(_, p)| p.iter().any(|&b| b != 0))
            .map(|(&i, _)| i)
            .collect();
        indices.sort_unstable();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for i in indices {
            fold(&i.to_le_bytes());
            fold(&self.pages[&i][..]);
        }
        h
    }

    /// Reads a single byte.
    #[must_use]
    pub fn read_u8(&self, addr: Addr) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Materializes the page containing `addr`, honouring the page limit.
    fn page_mut(&mut self, addr: Addr) -> Result<&mut [u8; PAGE_BYTES], MemoryLimitError> {
        let idx = addr >> PAGE_SHIFT;
        if !self.pages.contains_key(&idx) {
            if let Some(limit) = self.page_limit {
                if self.pages.len() >= limit {
                    return Err(MemoryLimitError { addr, limit });
                }
            }
        }
        Ok(self
            .pages
            .entry(idx)
            .or_insert_with(|| Box::new([0u8; PAGE_BYTES])))
    }

    /// Writes a single byte, failing if a new page would exceed the limit.
    pub fn try_write_u8(&mut self, addr: Addr, value: u8) -> Result<(), MemoryLimitError> {
        self.page_mut(addr)?[(addr & PAGE_MASK) as usize] = value;
        Ok(())
    }

    /// Writes a single byte, materializing the page if needed.
    ///
    /// # Panics
    ///
    /// Panics if a configured page limit is exceeded; trusted setup code
    /// may use the infallible writers, emulated stores go through
    /// [`Memory::try_write_uint`].
    pub fn write_u8(&mut self, addr: Addr, value: u8) {
        self.try_write_u8(addr, value)
            .expect("page limit exceeded by trusted setup write");
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    ///
    /// Accesses may straddle page boundaries.
    #[must_use]
    pub fn read_bytes<const N: usize>(&self, addr: Addr) -> [u8; N] {
        let mut out = [0u8; N];
        // Fast path: fully inside one page.
        let off = (addr & PAGE_MASK) as usize;
        if off + N <= PAGE_BYTES {
            if let Some(p) = self.pages.get(&(addr >> PAGE_SHIFT)) {
                out.copy_from_slice(&p[off..off + N]);
            }
            return out;
        }
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
        out
    }

    /// Writes little-endian bytes starting at `addr`, failing (with no
    /// partial effects for single-page writes) if a new page would exceed
    /// the configured limit.
    pub fn try_write_bytes(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), MemoryLimitError> {
        let off = (addr & PAGE_MASK) as usize;
        if off + bytes.len() <= PAGE_BYTES {
            let page = self.page_mut(addr)?;
            page[off..off + bytes.len()].copy_from_slice(bytes);
            return Ok(());
        }
        // Straddling write: materialize both pages up front so a limit hit
        // cannot leave a half-written value behind.
        let last = addr.wrapping_add(bytes.len() as u64 - 1);
        self.page_mut(addr)?;
        self.page_mut(last)?;
        for (i, &b) in bytes.iter().enumerate() {
            self.try_write_u8(addr.wrapping_add(i as u64), b)?;
        }
        Ok(())
    }

    /// Writes `N` little-endian bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if a configured page limit is exceeded (see
    /// [`Memory::write_u8`]).
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        self.try_write_bytes(addr, bytes)
            .expect("page limit exceeded by trusted setup write");
    }

    /// Reads a little-endian `u16`.
    #[must_use]
    pub fn read_u16(&self, addr: Addr) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u32`.
    #[must_use]
    pub fn read_u32(&self, addr: Addr) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: Addr) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads an `f64` (IEEE-754 bits, little-endian).
    #[must_use]
    pub fn read_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: Addr, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: Addr, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes an `f64` (IEEE-754 bits, little-endian).
    pub fn write_f64(&mut self, addr: Addr, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Reads `width` bytes as a zero-extended `u64` (width ∈ {1,2,4,8}).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    #[must_use]
    pub fn read_uint(&self, addr: Addr, width: u64) -> u64 {
        match width {
            1 => u64::from(self.read_u8(addr)),
            2 => u64::from(self.read_u16(addr)),
            4 => u64::from(self.read_u32(addr)),
            8 => self.read_u64(addr),
            w => panic!("unsupported access width {w}"),
        }
    }

    /// Writes the low `width` bytes of `value` (width ∈ {1,2,4,8}).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8 (internal invariant: widths
    /// come from `MemWidth::bytes()`), or if a configured page limit is
    /// exceeded (see [`Memory::write_u8`]).
    pub fn write_uint(&mut self, addr: Addr, width: u64, value: u64) {
        self.try_write_uint(addr, width, value)
            .expect("page limit exceeded by trusted setup write");
    }

    /// Writes the low `width` bytes of `value` (width ∈ {1,2,4,8}),
    /// failing if a new page would exceed the configured limit.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8 (internal invariant: widths
    /// come from `MemWidth::bytes()`).
    pub fn try_write_uint(
        &mut self,
        addr: Addr,
        width: u64,
        value: u64,
    ) -> Result<(), MemoryLimitError> {
        match width {
            1 => self.try_write_bytes(addr, &[value as u8]),
            2 => self.try_write_bytes(addr, &(value as u16).to_le_bytes()),
            4 => self.try_write_bytes(addr, &(value as u32).to_le_bytes()),
            8 => self.try_write_bytes(addr, &value.to_le_bytes()),
            w => panic!("unsupported access width {w}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.read_u8(u64::MAX), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn roundtrip_all_widths() {
        let mut m = Memory::new();
        m.write_u8(0x10, 0xab);
        m.write_u16(0x20, 0xbeef);
        m.write_u32(0x30, 0xdead_beef);
        m.write_u64(0x40, 0x0123_4567_89ab_cdef);
        m.write_f64(0x50, -2.5);
        assert_eq!(m.read_u8(0x10), 0xab);
        assert_eq!(m.read_u16(0x20), 0xbeef);
        assert_eq!(m.read_u32(0x30), 0xdead_beef);
        assert_eq!(m.read_u64(0x40), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_f64(0x50), -2.5);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0x100, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 1);
        assert_eq!(m.read_u8(0x103), 4);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_BYTES as u64 - 4; // straddles first/second page
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn read_uint_widths() {
        let mut m = Memory::new();
        m.write_u64(0x200, 0xffff_ffff_ffff_ffff);
        assert_eq!(m.read_uint(0x200, 1), 0xff);
        assert_eq!(m.read_uint(0x200, 2), 0xffff);
        assert_eq!(m.read_uint(0x200, 4), 0xffff_ffff);
        assert_eq!(m.read_uint(0x200, 8), u64::MAX);
    }

    #[test]
    fn write_uint_partial() {
        let mut m = Memory::new();
        m.write_u64(0x300, u64::MAX);
        m.write_uint(0x300, 2, 0);
        assert_eq!(m.read_u64(0x300), 0xffff_ffff_ffff_0000);
    }

    #[test]
    #[should_panic(expected = "unsupported access width")]
    fn bad_width_panics() {
        let _ = Memory::new().read_uint(0, 3);
    }

    #[test]
    fn page_limit_bounds_materialization() {
        let mut m = Memory::with_page_limit(2);
        assert!(m.try_write_u8(0x0, 1).is_ok());
        assert!(m.try_write_u8(0x1000, 2).is_ok());
        assert_eq!(
            m.try_write_u8(0x2000, 3),
            Err(MemoryLimitError {
                addr: 0x2000,
                limit: 2
            })
        );
        // Resident pages stay writable at the limit.
        assert!(m.try_write_u8(0x5, 9).is_ok());
        assert_eq!(m.resident_pages(), 2);
        // Reads never allocate.
        assert_eq!(m.read_u64(0x9_0000), 0);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn straddling_write_at_limit_has_no_partial_effect() {
        let mut m = Memory::with_page_limit(1);
        let addr = PAGE_BYTES as u64 - 4;
        assert!(m.try_write_uint(addr, 8, u64::MAX).is_err());
        assert_eq!(m.read_u64(addr), 0, "failed write must not be partial");
    }

    #[test]
    fn digest_tracks_logical_contents() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        assert_eq!(a.digest(), b.digest());
        a.write_u64(0x40, 77);
        assert_ne!(a.digest(), b.digest());
        b.write_u64(0x40, 77);
        // `b` also materializes (but zeroes) an unrelated page.
        b.write_u8(0x7000, 1);
        b.write_u8(0x7000, 0);
        assert_eq!(a.digest(), b.digest(), "zero pages are not observable");
        b.write_u64(0x40, 78);
        assert_ne!(a.digest(), b.digest());
    }
}
