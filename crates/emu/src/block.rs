//! Pre-decoded basic-block cache for wrong-path re-emulation.
//!
//! Wrong-path emulation re-executes the same handful of blocks over and
//! over: every mispredicted branch at the same site re-enters the same
//! not-taken (or taken) region, and loop-heavy kernels revisit their loop
//! bodies thousands of times per run. The per-instruction loop paid a
//! bounds-checked `Program::instr_at` fetch plus halt test for every one
//! of those re-executions. This cache decodes a *basic block* — a maximal
//! straight-line run of instructions starting at an entry pc — once, and
//! lends the emulator a `&[Instr]` slice to iterate thereafter.
//!
//! Invariants (see DESIGN.md §"Batched handoff and the block cache"):
//!
//! * A block starts at its entry pc and extends through contiguous text,
//!   **including** its terminating control-flow instruction, and stops
//!   *before* `halt`, the end of text, or the [`BLOCK_LEN_CAP`] length
//!   cap. Entry pcs that address `halt` or lie outside the text are
//!   reported as [`BlockFetchRef::Halt`] / [`BlockFetchRef::Illegal`] and
//!   never cached.
//! * Program text is immutable, so cached blocks never need invalidation.
//! * Eviction is FIFO by insertion order — deterministic, like the
//!   timing-side code cache — and the hit/miss/eviction counters are
//!   observational only: they can never perturb the simulated stream.

use crate::hash::FxBuildHasher;
use ffsim_isa::{Addr, Instr, Program, INSTR_BYTES};
use ffsim_obs::{Phase, ProfHandle};
use std::collections::{HashMap, VecDeque};

/// Maximum instructions per cached block. Long branch-free runs are split
/// at this boundary; the next chunk becomes its own cache entry.
pub const BLOCK_LEN_CAP: usize = 64;

/// Default block-cache capacity, in blocks. Sized like the timing-side
/// code cache: generously above any kernel's static block count so
/// steady-state eviction only happens on pathological code footprints.
pub const DEFAULT_BLOCK_CACHE_BLOCKS: usize = 4096;

/// Hit/miss/eviction counters for the block cache. Purely observational.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct BlockCacheStats {
    /// Probes that found a cached block.
    pub hits: u64,
    /// Probes that had to decode (including probes of `halt`/illegal entry
    /// pcs, which decode to a terminal marker and are not cached).
    pub misses: u64,
    /// Blocks evicted to stay within capacity.
    pub evictions: u64,
}

impl BlockCacheStats {
    /// Hit fraction in [0, 1]; 0 when the cache was never probed.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses;
        if probes == 0 {
            0.0
        } else {
            self.hits as f64 / probes as f64
        }
    }
}

/// What the emulator gets back for an entry pc: a borrow of the cached
/// block, or a terminal classification. Lending instead of handing out an
/// owned (refcounted) block matters on branchy code, where blocks average
/// only a few instructions and a per-block `Arc` clone would be an atomic
/// RMW pair on the hottest loop in wrong-path emulation.
#[derive(Debug)]
pub enum BlockFetchRef<'a> {
    /// A decoded straight-line run (never empty, never contains `halt`).
    Block(&'a [Instr]),
    /// The entry pc addresses `halt`.
    Halt,
    /// The entry pc is outside the program text.
    Illegal,
}

/// How [`BlockCache::decode_insert`] classified an entry pc.
enum Decoded {
    /// A real run was decoded and cached under the entry pc.
    Cached,
    /// The entry pc addresses `halt`; nothing was cached.
    Halt,
    /// The entry pc is outside the program text; nothing was cached.
    Illegal,
}

/// The cache proper: entry pc → decoded block, FIFO-evicted.
#[derive(Clone, Debug)]
pub struct BlockCache {
    blocks: HashMap<Addr, Box<[Instr]>, FxBuildHasher>,
    order: VecDeque<Addr>,
    capacity: usize,
    stats: BlockCacheStats,
}

impl BlockCache {
    /// Creates a cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> BlockCache {
        assert!(capacity > 0, "block cache capacity must be positive");
        BlockCache {
            blocks: HashMap::default(),
            order: VecDeque::new(),
            capacity,
            stats: BlockCacheStats::default(),
        }
    }

    /// The counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> BlockCacheStats {
        self.stats
    }

    /// Probes for the block entered at `pc`, counting a hit, and on a miss
    /// decodes, caches, and counts it — then lends the block. Decode time
    /// is attributed to `prof` as [`Phase::BlockDecode`].
    pub fn fetch(&mut self, program: &Program, pc: Addr, prof: &ProfHandle) -> BlockFetchRef<'_> {
        if self.blocks.contains_key(&pc) {
            self.stats.hits += 1;
        } else {
            prof.enter(Phase::BlockDecode);
            let decoded = self.decode_insert(program, pc);
            prof.exit();
            match decoded {
                Decoded::Cached => {}
                Decoded::Halt => return BlockFetchRef::Halt,
                Decoded::Illegal => return BlockFetchRef::Illegal,
            }
        }
        BlockFetchRef::Block(self.blocks.get(&pc).expect("probed or just inserted above"))
    }

    /// Decodes the block entered at `pc` from `program`, caches it when it
    /// is a real run of instructions, and counts a miss.
    fn decode_insert(&mut self, program: &Program, pc: Addr) -> Decoded {
        self.stats.misses += 1;
        let mut instrs = Vec::new();
        let mut cur = pc;
        while let Some(&instr) = program.instr_at(cur) {
            if matches!(instr, Instr::Halt) {
                break;
            }
            instrs.push(instr);
            if instr.is_branch() || instrs.len() >= BLOCK_LEN_CAP {
                break;
            }
            cur += INSTR_BYTES;
        }
        if instrs.is_empty() {
            // Terminal entry pc: classify, never cache.
            return if program.instr_at(pc).is_some() {
                Decoded::Halt
            } else {
                Decoded::Illegal
            };
        }
        if self.blocks.len() >= self.capacity {
            // FIFO eviction by insertion order; insertion never re-inserts
            // a live key (`fetch` probes before decoding), so `order`
            // always mirrors the map's key set exactly.
            if let Some(victim) = self.order.pop_front() {
                self.blocks.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.blocks.insert(pc, instrs.into_boxed_slice());
        self.order.push_back(pc);
        Decoded::Cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsim_isa::{Asm, Reg};

    fn prof() -> ProfHandle {
        ProfHandle::disabled()
    }

    fn program() -> Program {
        // li; loop: addi; bnez loop; halt
        let x = Reg::new(1);
        let mut a = Asm::new();
        a.li(x, 3);
        a.label("loop");
        a.addi(x, x, -1);
        a.bnez(x, "loop");
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn block_ends_at_branch_inclusive() {
        let p = program();
        let mut cache = BlockCache::new(8);
        let BlockFetchRef::Block(b) = cache.fetch(&p, p.base(), &prof()) else {
            panic!("entry block expected");
        };
        // li, addi, bnez — the branch terminates the block and is included.
        assert_eq!(b.len(), 3);
        assert!(b[2].is_branch());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn hits_count_and_return_same_block() {
        let p = program();
        let mut cache = BlockCache::new(8);
        let BlockFetchRef::Block(first) = cache.fetch(&p, p.base(), &prof()) else {
            panic!("entry block expected");
        };
        let first_ptr = first.as_ptr();
        let BlockFetchRef::Block(again) = cache.fetch(&p, p.base(), &prof()) else {
            panic!("hit expected");
        };
        assert_eq!(first_ptr, again.as_ptr(), "hit lends the same block");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn halt_and_illegal_entries_are_terminal_and_uncached() {
        let p = program();
        let halt_pc = p.base() + 3 * INSTR_BYTES;
        let mut cache = BlockCache::new(8);
        assert!(matches!(
            cache.fetch(&p, halt_pc, &prof()),
            BlockFetchRef::Halt
        ));
        assert!(matches!(
            cache.fetch(&p, 0xdead_0000, &prof()),
            BlockFetchRef::Illegal
        ));
        // Terminal pcs are never cached: re-probing decodes (misses) again.
        assert!(matches!(
            cache.fetch(&p, halt_pc, &prof()),
            BlockFetchRef::Halt
        ));
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn fifo_eviction_is_by_insertion_order() {
        let p = program();
        let mut cache = BlockCache::new(2);
        // Three distinct entry pcs: program base, the loop head, the bnez.
        let pcs = [p.base(), p.base() + INSTR_BYTES, p.base() + 2 * INSTR_BYTES];
        for pc in pcs {
            assert!(matches!(
                cache.fetch(&p, pc, &prof()),
                BlockFetchRef::Block(_)
            ));
        }
        assert_eq!(cache.stats().evictions, 1);
        // Newest two entries survive; the oldest was evicted, so probing it
        // re-decodes (a miss), while the survivors hit.
        assert!(matches!(
            cache.fetch(&p, pcs[1], &prof()),
            BlockFetchRef::Block(_)
        ));
        assert!(matches!(
            cache.fetch(&p, pcs[2], &prof()),
            BlockFetchRef::Block(_)
        ));
        assert_eq!(cache.stats().hits, 2);
        assert!(matches!(
            cache.fetch(&p, pcs[0], &prof()),
            BlockFetchRef::Block(_)
        ));
        assert_eq!(cache.stats().misses, 4, "oldest block was evicted");
    }

    #[test]
    fn long_runs_split_at_the_cap() {
        let mut a = Asm::new();
        let x = Reg::new(1);
        for _ in 0..(BLOCK_LEN_CAP + 10) {
            a.addi(x, x, 1);
        }
        a.halt();
        let p = a.assemble().unwrap();
        let mut cache = BlockCache::new(8);
        let len = match cache.fetch(&p, p.base(), &prof()) {
            BlockFetchRef::Block(b) => b.len(),
            other => panic!("entry block expected, got {other:?}"),
        };
        assert_eq!(len, BLOCK_LEN_CAP);
        let next = p.base() + (BLOCK_LEN_CAP as u64) * INSTR_BYTES;
        let rest = match cache.fetch(&p, next, &prof()) {
            BlockFetchRef::Block(b) => b.len(),
            other => panic!("tail block expected, got {other:?}"),
        };
        assert_eq!(rest, 10, "tail stops before halt");
    }

    #[test]
    fn hit_rate_reflects_counters() {
        let stats = BlockCacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(BlockCacheStats::default().hit_rate(), 0.0);
    }
}
