//! Pure instruction semantics: computes the effects of one instruction
//! against a register state and memory, without committing them.
//!
//! Keeping execution side-effect-free lets the emulator share one semantic
//! core between normal (correct-path) stepping and wrong-path emulation,
//! where stores must be suppressed and control flow follows the branch
//! predictor rather than the computed outcome.

use crate::dyninst::{BranchOutcome, MemAccess};
use crate::mem::Memory;
use crate::state::ArchState;
use ffsim_isa::{Addr, AluOp, BranchCond, FpCmpOp, FpOp, Instr, INSTR_BYTES};
use std::error::Error;
use std::fmt;

/// Faults raised by instruction execution.
///
/// On the correct path a fault indicates a workload bug and surfaces as a
/// typed error; on the wrong path faults are expected — real speculative
/// execution dereferences garbage pointers and divides by zero all the
/// time — and the [`FaultPolicy`](crate::FaultPolicy) decides whether they
/// squash the speculative stream or abort the run, per the paper (§III-B:
/// "Stores, as well as exceptions, need to be suppressed").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// A memory access that is not naturally aligned.
    Misaligned {
        /// Instruction address.
        pc: Addr,
        /// Offending data address.
        addr: Addr,
    },
    /// The program counter does not address an instruction.
    IllegalPc {
        /// Offending pc.
        pc: Addr,
    },
    /// A memory access beyond the configured address-space or page-count
    /// bound (see [`FaultModel::addr_limit`] and
    /// [`Memory::set_page_limit`](crate::Memory::set_page_limit)).
    OutOfRange {
        /// Instruction address.
        pc: Addr,
        /// Offending data address.
        addr: Addr,
    },
    /// Integer division (or remainder) by zero under
    /// [`FaultModel::trap_div_zero`]. With the default model this is not a
    /// fault: RISC-V semantics apply (`x/0 = -1`, `x%0 = x`).
    DivideByZero {
        /// Instruction address.
        pc: Addr,
    },
    /// A wrong path ran past the configured watchdog limit without
    /// terminating (see `InstrQueue::with_watchdog`).
    WatchdogExceeded {
        /// Wrong-path pc at which the watchdog fired.
        pc: Addr,
        /// The configured limit, in wrong-path instructions.
        limit: u64,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Misaligned { pc, addr } => {
                write!(f, "misaligned access to {addr:#x} at pc {pc:#x}")
            }
            Fault::IllegalPc { pc } => write!(f, "illegal program counter {pc:#x}"),
            Fault::OutOfRange { pc, addr } => {
                write!(f, "out-of-range access to {addr:#x} at pc {pc:#x}")
            }
            Fault::DivideByZero { pc } => write!(f, "integer division by zero at pc {pc:#x}"),
            Fault::WatchdogExceeded { pc, limit } => {
                write!(
                    f,
                    "wrong-path watchdog ({limit} instructions) fired at pc {pc:#x}"
                )
            }
        }
    }
}

impl Error for Fault {}

/// Configurable fault semantics for instruction execution.
///
/// The default model matches the seed simulator: RISC-V division semantics
/// (never faulting) and an unbounded address space. Hardening knobs let
/// the fault-injection harness and strict deployments turn latent
/// wild-address or divide-by-zero behaviour into typed [`Fault`]s.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultModel {
    /// Raise [`Fault::DivideByZero`] on integer division/remainder by zero
    /// instead of applying RISC-V semantics.
    pub trap_div_zero: bool,
    /// Raise [`Fault::OutOfRange`] on any data access at or beyond this
    /// address (`None` = full 64-bit space).
    pub addr_limit: Option<Addr>,
}

impl FaultModel {
    /// The permissive model: RISC-V division, unbounded addresses.
    #[must_use]
    pub fn permissive() -> FaultModel {
        FaultModel::default()
    }

    /// Checks a data access of `size` bytes at `addr` against the model.
    fn check_access(&self, pc: Addr, addr: Addr, size: u64) -> Result<(), Fault> {
        if let Some(limit) = self.addr_limit {
            if addr >= limit || addr.saturating_add(size) > limit {
                return Err(Fault::OutOfRange { pc, addr });
            }
        }
        Ok(())
    }
}

/// A pending register write.
#[derive(Clone, Copy, PartialEq, Debug)]
pub(crate) enum RegWrite {
    Int(ffsim_isa::Reg, u64),
    Fp(ffsim_isa::FReg, f64),
}

/// A pending store (value carried as raw little-endian bits).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct StoreOp {
    pub addr: Addr,
    pub width: u64,
    pub bits: u64,
}

/// The computed effects of one instruction.
#[derive(Clone, Copy, PartialEq, Debug)]
pub(crate) struct ExecOutcome {
    pub reg_write: Option<RegWrite>,
    pub store: Option<StoreOp>,
    pub mem: Option<MemAccess>,
    pub branch: Option<BranchOutcome>,
    pub next_pc: Addr,
}

fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.wrapping_shl((b & 63) as u32),
        AluOp::Srl => a.wrapping_shr((b & 63) as u32),
        AluOp::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
        AluOp::Slt => u64::from((a as i64) < (b as i64)),
        AluOp::Sltu => u64::from(a < b),
        AluOp::Mul => a.wrapping_mul(b),
        // RISC-V semantics: x/0 = -1, x%0 = x, MIN/-1 wraps.
        AluOp::Div => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                u64::MAX
            } else {
                a.wrapping_div(b) as u64
            }
        }
        AluOp::Rem => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                a as u64
            } else {
                a.wrapping_rem(b) as u64
            }
        }
    }
}

fn fp_alu(op: FpOp, a: f64, b: f64) -> f64 {
    match op {
        FpOp::Add => a + b,
        FpOp::Sub => a - b,
        FpOp::Mul => a * b,
        FpOp::Div => a / b,
        FpOp::Min => a.min(b),
        FpOp::Max => a.max(b),
    }
}

fn branch_taken(cond: BranchCond, a: u64, b: u64) -> bool {
    match cond {
        BranchCond::Eq => a == b,
        BranchCond::Ne => a != b,
        BranchCond::Lt => (a as i64) < (b as i64),
        BranchCond::Ge => (a as i64) >= (b as i64),
        BranchCond::Ltu => a < b,
        BranchCond::Geu => a >= b,
    }
}

fn check_div(model: &FaultModel, pc: Addr, op: AluOp, divisor: u64) -> Result<(), Fault> {
    if model.trap_div_zero && matches!(op, AluOp::Div | AluOp::Rem) && divisor == 0 {
        return Err(Fault::DivideByZero { pc });
    }
    Ok(())
}

fn sign_extend(value: u64, width_bytes: u64) -> u64 {
    let bits = width_bytes * 8;
    if bits == 64 {
        return value;
    }
    let shift = 64 - bits;
    (((value << shift) as i64) >> shift) as u64
}

/// Executes `instr` at `pc`, reading `state` and `mem`, without mutating
/// either. The caller decides which effects to commit. `model` selects
/// which conditions fault (see [`FaultModel`]).
pub(crate) fn execute(
    state: &ArchState,
    mem: &Memory,
    pc: Addr,
    instr: &Instr,
    model: &FaultModel,
) -> Result<ExecOutcome, Fault> {
    let fallthrough = pc + INSTR_BYTES;
    let mut out = ExecOutcome {
        reg_write: None,
        store: None,
        mem: None,
        branch: None,
        next_pc: fallthrough,
    };
    match *instr {
        Instr::Alu { op, rd, rs1, rs2 } => {
            let b = state.reg(rs2);
            check_div(model, pc, op, b)?;
            out.reg_write = Some(RegWrite::Int(rd, alu(op, state.reg(rs1), b)));
        }
        Instr::AluImm { op, rd, rs1, imm } => {
            check_div(model, pc, op, imm as u64)?;
            out.reg_write = Some(RegWrite::Int(rd, alu(op, state.reg(rs1), imm as u64)));
        }
        Instr::LoadImm { rd, imm } => {
            out.reg_write = Some(RegWrite::Int(rd, imm as u64));
        }
        Instr::Load {
            rd,
            base,
            offset,
            width,
            signed,
        } => {
            let addr = state.reg(base).wrapping_add(offset as u64);
            let size = width.bytes();
            if !addr.is_multiple_of(size) {
                return Err(Fault::Misaligned { pc, addr });
            }
            model.check_access(pc, addr, size)?;
            let raw = mem.read_uint(addr, size);
            let value = if signed { sign_extend(raw, size) } else { raw };
            out.reg_write = Some(RegWrite::Int(rd, value));
            out.mem = Some(MemAccess {
                addr,
                size: size as u8,
                is_store: false,
            });
        }
        Instr::Store {
            src,
            base,
            offset,
            width,
        } => {
            let addr = state.reg(base).wrapping_add(offset as u64);
            let size = width.bytes();
            if !addr.is_multiple_of(size) {
                return Err(Fault::Misaligned { pc, addr });
            }
            model.check_access(pc, addr, size)?;
            out.store = Some(StoreOp {
                addr,
                width: size,
                bits: state.reg(src),
            });
            out.mem = Some(MemAccess {
                addr,
                size: size as u8,
                is_store: true,
            });
        }
        Instr::FpAlu { op, fd, fs1, fs2 } => {
            out.reg_write = Some(RegWrite::Fp(
                fd,
                fp_alu(op, state.freg(fs1), state.freg(fs2)),
            ));
        }
        Instr::FpLoad { fd, base, offset } => {
            let addr = state.reg(base).wrapping_add(offset as u64);
            if !addr.is_multiple_of(8) {
                return Err(Fault::Misaligned { pc, addr });
            }
            model.check_access(pc, addr, 8)?;
            out.reg_write = Some(RegWrite::Fp(fd, mem.read_f64(addr)));
            out.mem = Some(MemAccess {
                addr,
                size: 8,
                is_store: false,
            });
        }
        Instr::FpStore { fs, base, offset } => {
            let addr = state.reg(base).wrapping_add(offset as u64);
            if !addr.is_multiple_of(8) {
                return Err(Fault::Misaligned { pc, addr });
            }
            model.check_access(pc, addr, 8)?;
            out.store = Some(StoreOp {
                addr,
                width: 8,
                bits: state.freg(fs).to_bits(),
            });
            out.mem = Some(MemAccess {
                addr,
                size: 8,
                is_store: true,
            });
        }
        Instr::FpCmp { op, rd, fs1, fs2 } => {
            let (a, b) = (state.freg(fs1), state.freg(fs2));
            let v = match op {
                FpCmpOp::Eq => a == b,
                FpCmpOp::Lt => a < b,
                FpCmpOp::Le => a <= b,
            };
            out.reg_write = Some(RegWrite::Int(rd, u64::from(v)));
        }
        Instr::IntToFp { fd, rs } => {
            out.reg_write = Some(RegWrite::Fp(fd, state.reg(rs) as i64 as f64));
        }
        Instr::FpToInt { rd, fs } => {
            out.reg_write = Some(RegWrite::Int(rd, state.freg(fs) as i64 as u64));
        }
        Instr::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            let taken = branch_taken(cond, state.reg(rs1), state.reg(rs2));
            let next = if taken { target } else { fallthrough };
            out.branch = Some(BranchOutcome {
                taken,
                next_pc: next,
            });
            out.next_pc = next;
        }
        Instr::Jal { rd, target } => {
            out.reg_write = Some(RegWrite::Int(rd, fallthrough));
            out.branch = Some(BranchOutcome {
                taken: true,
                next_pc: target,
            });
            out.next_pc = target;
        }
        Instr::Jalr { rd, base, offset } => {
            let target = state.reg(base).wrapping_add(offset as u64) & !(INSTR_BYTES - 1);
            out.reg_write = Some(RegWrite::Int(rd, fallthrough));
            out.branch = Some(BranchOutcome {
                taken: true,
                next_pc: target,
            });
            out.next_pc = target;
        }
        Instr::Nop => {}
        Instr::Halt => {
            out.next_pc = pc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsim_isa::{FReg, MemWidth, Reg};

    fn setup() -> (ArchState, Memory) {
        (ArchState::new(0x1000), Memory::new())
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(alu(AluOp::Add, u64::MAX, 1), 0);
        assert_eq!(alu(AluOp::Sub, 0, 1), u64::MAX);
        assert_eq!(alu(AluOp::Slt, (-1i64) as u64, 1), 1);
        assert_eq!(alu(AluOp::Sltu, (-1i64) as u64, 1), 0);
        assert_eq!(alu(AluOp::Sra, (-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(alu(AluOp::Srl, 8, 1), 4);
        assert_eq!(alu(AluOp::Div, 7, 0), u64::MAX, "div by zero is -1");
        assert_eq!(alu(AluOp::Rem, 7, 0), 7, "rem by zero is dividend");
        assert_eq!(
            alu(AluOp::Div, i64::MIN as u64, (-1i64) as u64),
            i64::MIN as u64,
            "overflowing division wraps"
        );
        assert_eq!(alu(AluOp::Sll, 1, 64), 1, "shift amount masked to 6 bits");
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sign_extend(0xff, 1), u64::MAX);
        assert_eq!(sign_extend(0x7f, 1), 0x7f);
        assert_eq!(sign_extend(0xffff_ffff, 4), u64::MAX);
        assert_eq!(sign_extend(0x8000, 2), 0xffff_ffff_ffff_8000);
    }

    #[test]
    fn load_sign_and_zero_extend() {
        let (mut s, mut m) = setup();
        s.set_reg(Reg::new(1), 0x100);
        m.write_u32(0x100, 0xffff_fff6); // -10 as i32
        let signed = Instr::Load {
            rd: Reg::new(2),
            base: Reg::new(1),
            offset: 0,
            width: MemWidth::W,
            signed: true,
        };
        let out = execute(&s, &m, 0x1000, &signed, &FaultModel::default()).unwrap();
        assert_eq!(
            out.reg_write,
            Some(RegWrite::Int(Reg::new(2), (-10i64) as u64))
        );
        let unsigned = Instr::Load {
            rd: Reg::new(2),
            base: Reg::new(1),
            offset: 0,
            width: MemWidth::W,
            signed: false,
        };
        let out = execute(&s, &m, 0x1000, &unsigned, &FaultModel::default()).unwrap();
        assert_eq!(out.reg_write, Some(RegWrite::Int(Reg::new(2), 0xffff_fff6)));
    }

    #[test]
    fn misaligned_access_faults() {
        let (mut s, m) = setup();
        s.set_reg(Reg::new(1), 0x101);
        let ld = Instr::Load {
            rd: Reg::new(2),
            base: Reg::new(1),
            offset: 0,
            width: MemWidth::D,
            signed: true,
        };
        assert_eq!(
            execute(&s, &m, 0x1000, &ld, &FaultModel::default()),
            Err(Fault::Misaligned {
                pc: 0x1000,
                addr: 0x101
            })
        );
    }

    #[test]
    fn branch_outcomes() {
        let (mut s, m) = setup();
        s.set_reg(Reg::new(1), 5);
        s.set_reg(Reg::new(2), 5);
        let b = Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::new(1),
            rs2: Reg::new(2),
            target: 0x2000,
        };
        let out = execute(&s, &m, 0x1000, &b, &FaultModel::default()).unwrap();
        assert_eq!(out.next_pc, 0x2000);
        assert_eq!(
            out.branch,
            Some(BranchOutcome {
                taken: true,
                next_pc: 0x2000
            })
        );
        s.set_reg(Reg::new(2), 6);
        let out = execute(&s, &m, 0x1000, &b, &FaultModel::default()).unwrap();
        assert_eq!(out.next_pc, 0x1004);
        assert!(!out.branch.unwrap().taken);
    }

    #[test]
    fn jalr_aligns_target_and_links() {
        let (mut s, m) = setup();
        s.set_reg(Reg::new(5), 0x2003);
        let j = Instr::Jalr {
            rd: Reg::new(1),
            base: Reg::new(5),
            offset: 0,
        };
        let out = execute(&s, &m, 0x1000, &j, &FaultModel::default()).unwrap();
        assert_eq!(out.next_pc, 0x2000);
        assert_eq!(out.reg_write, Some(RegWrite::Int(Reg::new(1), 0x1004)));
    }

    #[test]
    fn store_effects_not_applied_by_execute() {
        let (mut s, m) = setup();
        s.set_reg(Reg::new(1), 0x100);
        s.set_reg(Reg::new(2), 77);
        let st = Instr::Store {
            src: Reg::new(2),
            base: Reg::new(1),
            offset: 0,
            width: MemWidth::D,
        };
        let out = execute(&s, &m, 0x1000, &st, &FaultModel::default()).unwrap();
        assert_eq!(
            out.store,
            Some(StoreOp {
                addr: 0x100,
                width: 8,
                bits: 77
            })
        );
        assert_eq!(m.read_u64(0x100), 0, "execute() must not mutate memory");
        assert!(out.mem.unwrap().is_store);
    }

    #[test]
    fn fp_ops_and_conversions() {
        let (mut s, m) = setup();
        s.set_freg(FReg::new(1), 1.5);
        s.set_freg(FReg::new(2), 2.0);
        let f = Instr::FpAlu {
            op: FpOp::Mul,
            fd: FReg::new(0),
            fs1: FReg::new(1),
            fs2: FReg::new(2),
        };
        let out = execute(&s, &m, 0x1000, &f, &FaultModel::default()).unwrap();
        assert_eq!(out.reg_write, Some(RegWrite::Fp(FReg::new(0), 3.0)));

        s.set_reg(Reg::new(3), (-7i64) as u64);
        let cvt = Instr::IntToFp {
            fd: FReg::new(3),
            rs: Reg::new(3),
        };
        let out = execute(&s, &m, 0x1000, &cvt, &FaultModel::default()).unwrap();
        assert_eq!(out.reg_write, Some(RegWrite::Fp(FReg::new(3), -7.0)));

        s.set_freg(FReg::new(4), -2.9);
        let cvt2 = Instr::FpToInt {
            rd: Reg::new(4),
            fs: FReg::new(4),
        };
        let out = execute(&s, &m, 0x1000, &cvt2, &FaultModel::default()).unwrap();
        assert_eq!(
            out.reg_write,
            Some(RegWrite::Int(Reg::new(4), (-2i64) as u64)),
            "fp→int truncates toward zero"
        );
    }

    #[test]
    fn div_by_zero_traps_only_when_enabled() {
        let (mut s, m) = setup();
        s.set_reg(Reg::new(1), 7);
        let div = Instr::Alu {
            op: AluOp::Div,
            rd: Reg::new(2),
            rs1: Reg::new(1),
            rs2: Reg::new(3), // x3 = 0
        };
        let out = execute(&s, &m, 0x1000, &div, &FaultModel::default()).unwrap();
        assert_eq!(out.reg_write, Some(RegWrite::Int(Reg::new(2), u64::MAX)));
        let strict = FaultModel {
            trap_div_zero: true,
            ..FaultModel::default()
        };
        assert_eq!(
            execute(&s, &m, 0x1000, &div, &strict),
            Err(Fault::DivideByZero { pc: 0x1000 })
        );
        // Mul with a zero operand must not trap.
        let mul = Instr::Alu {
            op: AluOp::Mul,
            rd: Reg::new(2),
            rs1: Reg::new(1),
            rs2: Reg::new(3),
        };
        assert!(execute(&s, &m, 0x1000, &mul, &strict).is_ok());
    }

    #[test]
    fn addr_limit_bounds_data_accesses() {
        let (mut s, m) = setup();
        let model = FaultModel {
            addr_limit: Some(0x200),
            ..FaultModel::default()
        };
        s.set_reg(Reg::new(1), 0x1f8);
        let ld = Instr::Load {
            rd: Reg::new(2),
            base: Reg::new(1),
            offset: 0,
            width: MemWidth::D,
            signed: false,
        };
        assert!(
            execute(&s, &m, 0x1000, &ld, &model).is_ok(),
            "last in-bounds dword"
        );
        s.set_reg(Reg::new(1), 0x200);
        assert_eq!(
            execute(&s, &m, 0x1000, &ld, &model),
            Err(Fault::OutOfRange {
                pc: 0x1000,
                addr: 0x200
            })
        );
        // Straddling the limit faults too.
        s.set_reg(Reg::new(1), 0x1fc);
        let ld_w = Instr::Load {
            rd: Reg::new(2),
            base: Reg::new(1),
            offset: 0,
            width: MemWidth::W,
            signed: false,
        };
        assert!(execute(&s, &m, 0x1000, &ld_w, &model).is_ok());
        let st = Instr::Store {
            src: Reg::new(2),
            base: Reg::new(1),
            offset: 8,
            width: MemWidth::W,
        };
        assert_eq!(
            execute(&s, &m, 0x1000, &st, &model),
            Err(Fault::OutOfRange {
                pc: 0x1000,
                addr: 0x204
            })
        );
    }

    #[test]
    fn halt_points_at_itself() {
        let (s, m) = setup();
        let out = execute(&s, &m, 0x1000, &Instr::Halt, &FaultModel::default()).unwrap();
        assert_eq!(out.next_pc, 0x1000);
    }
}
