//! Dynamic instruction records — the payload flowing from the functional
//! simulator to the performance simulator.
//!
//! A [`DynInst`] carries everything the timing model needs about one
//! executed instruction: its address and decoded form, the data memory
//! access it performed (if any), and the actual control-flow outcome for
//! branches. This is the functional-first contract described in §II of the
//! paper: "instruction address, disassembled instruction, memory addresses".

use crate::cancel::CancelCause;
use crate::exec::Fault;
use ffsim_isa::{Addr, BranchKind, ExecClass, Instr, Operands};

/// A data-memory access performed by an instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemAccess {
    /// Byte address of the access.
    pub addr: Addr,
    /// Access size in bytes.
    pub size: u8,
    /// Whether the access is a store.
    pub is_store: bool,
}

/// The resolved outcome of a control-flow instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BranchOutcome {
    /// Whether the branch was taken (always true for jumps).
    pub taken: bool,
    /// The instruction's actual successor pc (target if taken, fall-through
    /// otherwise).
    pub next_pc: Addr,
}

/// One dynamically-executed instruction.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DynInst {
    /// Program-order sequence number assigned by the functional simulator.
    /// Wrong-path instructions number their bundle locally from zero.
    pub seq: u64,
    /// Address of the instruction.
    pub pc: Addr,
    /// The decoded instruction.
    pub instr: Instr,
    /// The data memory access, if the instruction is a load or store.
    ///
    /// Wrong-path instructions produced by *instruction reconstruction*
    /// carry `None` here even for loads/stores — the reconstruction cannot
    /// recover addresses (§III-A); the convergence technique fills some of
    /// them back in.
    pub mem: Option<MemAccess>,
    /// The control-flow outcome, if the instruction is a branch/jump.
    pub branch: Option<BranchOutcome>,
    /// The pc of the next instruction in the executed path.
    pub next_pc: Addr,
}

impl DynInst {
    /// The µop execution class (delegates to the decoded instruction).
    #[must_use]
    pub fn exec_class(&self) -> ExecClass {
        self.instr.exec_class()
    }

    /// The branch kind, if this is a control-flow instruction.
    #[must_use]
    pub fn branch_kind(&self) -> Option<BranchKind> {
        self.instr.branch_kind()
    }

    /// The static register operands.
    #[must_use]
    pub fn operands(&self) -> Operands {
        self.instr.operands()
    }

    /// Whether this is a load with a known address.
    #[must_use]
    pub fn is_load_with_addr(&self) -> bool {
        self.mem.is_some_and(|m| !m.is_store)
    }

    /// The fall-through pc (`pc + 4`).
    #[must_use]
    pub fn fallthrough(&self) -> Addr {
        self.pc + ffsim_isa::INSTR_BYTES
    }
}

/// Why wrong-path generation stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WrongPathStop {
    /// The per-misprediction instruction budget (ROB size plus frontend
    /// buffers, per the paper) was exhausted.
    BudgetExhausted,
    /// Execution left the program text (wild indirect target, fall-through
    /// off the image) — the analogue of Pin hitting kernel code or an
    /// unmapped region.
    IllegalPc(Addr),
    /// A fault occurred on the wrong path (e.g. misaligned access); faults
    /// must be suppressed, so generation stops. The
    /// [`FaultPolicy`](crate::FaultPolicy) decides whether the fault is
    /// squashed with the bundle or aborts the run.
    Fault(Fault),
    /// The wrong path ran for `limit` instructions without terminating and
    /// the watchdog fired (see `InstrQueue::with_watchdog`); the pc is
    /// where emulation was cut off.
    WatchdogExceeded {
        /// Wrong-path pc at which the watchdog fired.
        pc: Addr,
        /// The configured limit, in wrong-path instructions.
        limit: u64,
    },
    /// The wrong path reached a `halt` (the syscall analogue — emulation
    /// cannot continue past it).
    Halt,
    /// The branch-direction oracle declined to predict (e.g. indirect
    /// branch without a target in the predictor).
    OracleStop,
    /// The run's [`CancelToken`](crate::CancelToken) fired mid-emulation;
    /// the partial bundle is discarded and the stream ends cooperatively.
    Cancelled(CancelCause),
}

/// A fully-emulated wrong path for one mispredicted branch, produced by
/// [`crate::Emulator::emulate_wrong_path`].
#[derive(Clone, PartialEq, Debug)]
pub struct WrongPathBundle {
    /// The wrong-path instructions in fetch order, with functionally
    /// emulated memory addresses (stores suppressed).
    pub insts: Vec<DynInst>,
    /// Why generation stopped.
    pub stop: WrongPathStop,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsim_isa::{AluOp, Instr, Reg};

    fn mk(instr: Instr) -> DynInst {
        DynInst {
            seq: 0,
            pc: 0x1000,
            instr,
            mem: None,
            branch: None,
            next_pc: 0x1004,
        }
    }

    #[test]
    fn fallthrough_is_pc_plus_4() {
        let d = mk(Instr::Nop);
        assert_eq!(d.fallthrough(), 0x1004);
    }

    #[test]
    fn load_with_addr_detection() {
        let mut d = mk(Instr::Load {
            rd: Reg::new(1),
            base: Reg::new(2),
            offset: 0,
            width: ffsim_isa::MemWidth::D,
            signed: true,
        });
        assert!(!d.is_load_with_addr());
        d.mem = Some(MemAccess {
            addr: 0x80,
            size: 8,
            is_store: false,
        });
        assert!(d.is_load_with_addr());
        d.mem = Some(MemAccess {
            addr: 0x80,
            size: 8,
            is_store: true,
        });
        assert!(!d.is_load_with_addr());
    }

    #[test]
    fn delegation_to_instr() {
        let d = mk(Instr::Alu {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(2),
            rs2: Reg::new(3),
        });
        assert_eq!(d.exec_class(), ffsim_isa::ExecClass::IntAlu);
        assert_eq!(d.branch_kind(), None);
        assert_eq!(d.operands().src_iter().count(), 2);
    }
}
