//! The functional emulator — this repository's substitute for Intel Pin.
//!
//! [`Emulator`] executes a [`Program`] instruction by instruction, emitting
//! one [`DynInst`] record per executed instruction. It provides exactly the
//! "advanced features" the paper's wrong-path emulation technique needs
//! from the functional simulator (§III-B):
//!
//! * **checkpointing** of architectural state ([`Emulator::checkpoint`] /
//!   [`Emulator::restore`], Pin's `PIN_SaveContext`),
//! * **execution redirection** ([`Emulator::execute_at`], Pin's
//!   `PIN_ExecuteAt`), and
//! * **wrong-path emulation** ([`Emulator::emulate_wrong_path`]) with
//!   suppressed stores and suppressed faults.

use crate::block::{BlockCache, BlockCacheStats, BlockFetchRef, DEFAULT_BLOCK_CACHE_BLOCKS};
use crate::cancel::{CancelCause, CancelToken};
use crate::dyninst::{BranchOutcome, DynInst, WrongPathBundle, WrongPathStop};
use crate::exec::{execute, Fault, FaultModel, RegWrite};
use crate::mem::Memory;
use crate::state::ArchState;
use ffsim_isa::{Addr, Instr, Program};
use ffsim_obs::ProfHandle;
use std::error::Error;
use std::fmt;

/// Why [`Emulator::step`] could not produce an instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepError {
    /// The program has executed its `halt` instruction.
    Halted,
    /// A fault occurred on the correct path (workload bug).
    Fault(Fault),
    /// The run's [`CancelToken`] fired (supervisor request or watchdog
    /// deadline); the emulator state is left consistent at the boundary of
    /// the last completed instruction.
    Cancelled(CancelCause),
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::Halted => write!(f, "program has halted"),
            StepError::Fault(fault) => write!(f, "correct-path fault: {fault}"),
            StepError::Cancelled(cause) => write!(f, "execution stopped: {cause}"),
        }
    }
}

impl Error for StepError {}

/// Why an [`Emulator`] could not be constructed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EmuError {
    /// The program's entry point does not address an instruction.
    EntryNotExecutable {
        /// The offending entry pc.
        entry: Addr,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::EntryNotExecutable { entry } => {
                write!(f, "program entry point {entry:#x} is not executable")
            }
        }
    }
}

impl Error for EmuError {}

/// Decides the fetch direction of branches *on the wrong path*.
///
/// On real hardware the wrong path is steered by the branch predictor, not
/// by computed outcomes (the paper: "When a wrong-path branch is fetched,
/// it is also predicted, and the predicted target is used to continue the
/// wrong path", §III-A). The timing layer implements this trait with its
/// predictor; [`FollowComputed`] is a trivial oracle for tests.
pub trait BranchOracle {
    /// Returns the next fetch pc after the wrong-path branch at `pc`, or
    /// `None` to stop wrong-path generation (e.g. unpredictable indirect).
    ///
    /// `computed` is the functionally-computed outcome of the branch with
    /// wrong-path register values, which an oracle may use or ignore.
    fn next_fetch_pc(&mut self, pc: Addr, instr: &Instr, computed: BranchOutcome) -> Option<Addr>;
}

/// Oracle that steers wrong-path branches by their functionally-computed
/// outcome — i.e. a perfect within-wrong-path predictor. Useful in tests
/// and as an upper bound in ablations.
#[derive(Clone, Copy, Default, Debug)]
pub struct FollowComputed;

impl BranchOracle for FollowComputed {
    fn next_fetch_pc(
        &mut self,
        _pc: Addr,
        _instr: &Instr,
        computed: BranchOutcome,
    ) -> Option<Addr> {
        Some(computed.next_pc)
    }
}

/// The functional emulator.
///
/// # Examples
///
/// ```
/// use ffsim_emu::Emulator;
/// use ffsim_isa::{Asm, Reg};
///
/// let mut a = Asm::new();
/// a.li(Reg::new(1), 2);
/// a.li(Reg::new(2), 3);
/// a.add(Reg::new(3), Reg::new(1), Reg::new(2));
/// a.halt();
/// let mut emu = Emulator::new(a.assemble()?)?;
/// let executed = emu.run_to_halt(100)?;
/// assert_eq!(executed, 4);
/// assert_eq!(emu.state().reg(Reg::new(3)), 5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Emulator {
    program: Program,
    mem: Memory,
    state: ArchState,
    fault_model: FaultModel,
    cancel: Option<CancelToken>,
    seq: u64,
    halted: bool,
    block_cache: Option<BlockCache>,
    prof: ProfHandle,
}

impl Emulator {
    /// Creates an emulator for `program` with zeroed memory, entering at the
    /// program's entry point.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::EntryNotExecutable`] if the entry point does not
    /// address an instruction.
    pub fn new(program: Program) -> Result<Emulator, EmuError> {
        Emulator::with_memory(program, Memory::new())
    }

    /// Creates an emulator with a pre-initialized memory image (workloads
    /// lay out their data segments before starting execution).
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::EntryNotExecutable`] if the entry point does not
    /// address an instruction.
    pub fn with_memory(program: Program, mem: Memory) -> Result<Emulator, EmuError> {
        let entry = program.entry();
        if program.instr_at(entry).is_none() {
            return Err(EmuError::EntryNotExecutable { entry });
        }
        let state = ArchState::new(entry);
        Ok(Emulator {
            program,
            mem,
            state,
            fault_model: FaultModel::default(),
            cancel: None,
            seq: 0,
            halted: false,
            block_cache: Some(BlockCache::new(DEFAULT_BLOCK_CACHE_BLOCKS)),
            prof: ProfHandle::disabled(),
        })
    }

    /// Sizes (or, with `None`, disables) the pre-decoded basic-block cache
    /// used by wrong-path emulation. On by default with
    /// [`DEFAULT_BLOCK_CACHE_BLOCKS`] entries; disabling it falls back to
    /// per-instruction decode. Either setting produces the identical
    /// instruction stream — the cache is a pure host-speed device.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `Some(0)`.
    pub fn set_block_cache(&mut self, capacity: Option<usize>) {
        self.block_cache = capacity.map(BlockCache::new);
    }

    /// Block-cache hit/miss/eviction counters (zeros when disabled).
    #[must_use]
    pub fn block_cache_stats(&self) -> BlockCacheStats {
        self.block_cache
            .as_ref()
            .map(BlockCache::stats)
            .unwrap_or_default()
    }

    /// Installs a shared phase profiler: block decodes inside wrong-path
    /// emulation are attributed as [`ffsim_obs::Phase::BlockDecode`],
    /// nested under whatever scope the caller holds open.
    pub fn set_profiler(&mut self, prof: ProfHandle) {
        self.prof = prof;
    }

    /// Attaches a [`CancelToken`]: every subsequent [`Emulator::step`] and
    /// wrong-path emulation loop iteration becomes a cancellation point
    /// (one relaxed atomic load). `None` detaches.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// The cause the attached token fired with, if any.
    fn cancel_cause(&self) -> Option<CancelCause> {
        self.cancel.as_ref().and_then(CancelToken::cause)
    }

    /// Selects the [`FaultModel`] applied to every executed instruction
    /// (correct and wrong path alike). Defaults to
    /// [`FaultModel::permissive`].
    pub fn set_fault_model(&mut self, model: FaultModel) {
        self.fault_model = model;
    }

    /// The active fault model.
    #[must_use]
    pub fn fault_model(&self) -> FaultModel {
        self.fault_model
    }

    /// A 64-bit digest of the full architectural state (registers, pc and
    /// logical memory contents) for bit-identity comparisons across runs.
    #[must_use]
    pub fn digest(&self) -> u64 {
        // Fold the two component digests FNV-style so the pair ordering
        // matters.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [self.state.digest(), self.mem.digest()] {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The architectural register state.
    #[must_use]
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// Mutable architectural register state (for workload setup).
    pub fn state_mut(&mut self) -> &mut ArchState {
        &mut self.state
    }

    /// The data memory.
    #[must_use]
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable data memory (for workload setup and validation).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Whether the program has halted.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of correct-path instructions executed so far.
    #[must_use]
    pub fn instructions_executed(&self) -> u64 {
        self.seq
    }

    /// Takes a checkpoint of the architectural register state.
    #[must_use]
    pub fn checkpoint(&self) -> ArchState {
        self.state.clone()
    }

    /// Restores a previously-taken checkpoint.
    pub fn restore(&mut self, checkpoint: ArchState) {
        self.state = checkpoint;
    }

    /// Redirects execution to `pc` (Pin's `PIN_ExecuteAt`).
    pub fn execute_at(&mut self, pc: Addr) {
        self.state.pc = pc;
    }

    /// Executes one correct-path instruction and returns its record.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Halted`] once the program has executed `halt`
    /// (the `halt` itself is returned as a normal instruction), and
    /// [`StepError::Fault`] on correct-path faults.
    pub fn step(&mut self) -> Result<DynInst, StepError> {
        if self.halted {
            return Err(StepError::Halted);
        }
        if let Some(cause) = self.cancel_cause() {
            return Err(StepError::Cancelled(cause));
        }
        let pc = self.state.pc;
        let instr = *self
            .program
            .instr_at(pc)
            .ok_or(StepError::Fault(Fault::IllegalPc { pc }))?;
        let out = execute(&self.state, &self.mem, pc, &instr, &self.fault_model)
            .map_err(StepError::Fault)?;
        if let Some(st) = out.store {
            // Commit the store first so a page-limit hit faults before any
            // register effect lands.
            self.mem
                .try_write_uint(st.addr, st.width, st.bits)
                .map_err(|e| StepError::Fault(Fault::OutOfRange { pc, addr: e.addr }))?;
        }
        match out.reg_write {
            Some(RegWrite::Int(r, v)) => self.state.set_reg(r, v),
            Some(RegWrite::Fp(f, v)) => self.state.set_freg(f, v),
            None => {}
        }
        self.state.pc = out.next_pc;
        if matches!(instr, Instr::Halt) {
            self.halted = true;
        }
        let inst = DynInst {
            seq: self.seq,
            pc,
            instr,
            mem: out.mem,
            branch: out.branch,
            next_pc: out.next_pc,
        };
        self.seq += 1;
        Ok(inst)
    }

    /// Runs until `halt` or until `max_steps` instructions have executed.
    ///
    /// Returns the number of instructions executed by this call.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Fault`] on a correct-path fault.
    pub fn run_to_halt(&mut self, max_steps: u64) -> Result<u64, StepError> {
        let start = self.seq;
        while !self.halted && self.seq - start < max_steps {
            self.step()?;
        }
        Ok(self.seq - start)
    }

    /// Emulates the wrong path starting at `start`, for at most `max_insts`
    /// instructions, steering wrong-path branches through `oracle`.
    ///
    /// The paper's technique (§III-B): take a register checkpoint, redirect
    /// execution to the wrong-path target, execute with **stores and
    /// exceptions suppressed**, then restore the checkpoint and continue on
    /// the correct path. Memory is never modified; register effects happen
    /// on a scratch copy that is thrown away. Store addresses are still
    /// recorded in the emitted [`DynInst`]s so the timing model can play
    /// them against the data cache. There is no store-to-load forwarding
    /// along the wrong path — wrong-path loads read the architectural
    /// memory at the branch, as in the paper.
    #[must_use]
    pub fn emulate_wrong_path<O: BranchOracle + ?Sized>(
        &mut self,
        start: Addr,
        max_insts: usize,
        oracle: &mut O,
    ) -> WrongPathBundle {
        self.emulate_wrong_path_bounded(start, max_insts, None, oracle)
    }

    /// Like [`Emulator::emulate_wrong_path`], with an additional watchdog
    /// bound: if the wrong path runs for `watchdog` instructions without
    /// terminating on its own, generation stops with
    /// [`WrongPathStop::WatchdogExceeded`]. The watchdog is a fault-
    /// tolerance backstop (distinguishable from the ordinary budget, which
    /// models ROB plus frontend capacity); the squash-and-restore contract
    /// is identical either way.
    #[must_use]
    pub fn emulate_wrong_path_bounded<O: BranchOracle + ?Sized>(
        &mut self,
        start: Addr,
        max_insts: usize,
        watchdog: Option<u64>,
        oracle: &mut O,
    ) -> WrongPathBundle {
        let checkpoint = self.checkpoint();
        self.state.pc = start;
        // Size the bundle for the binding bound up front: the budget is a
        // few hundred instructions (ROB plus frontend), and growth-doubling
        // a fresh Vec would re-copy every record several times per episode.
        let cap = watchdog
            .and_then(|w| usize::try_from(w).ok())
            .map_or(max_insts, |w| w.min(max_insts));
        let mut insts = Vec::with_capacity(cap);
        let stop = self.wp_run(max_insts, watchdog, oracle, &mut insts);
        self.restore(checkpoint);
        WrongPathBundle { insts, stop }
    }

    /// The wrong-path emulation loop proper, block-at-a-time. The
    /// per-instruction stop checks and their priority order (cancel →
    /// watchdog → budget → illegal pc → halt → fault → oracle stop) are
    /// exactly those of per-instruction stepping: block members after the
    /// first skip only the illegal-pc and halt probes, which block decode
    /// already proved cannot fire (blocks contain neither `halt` nor
    /// out-of-text pcs). The watchdog and budget bounds collapse into one
    /// count limit; the stop reason is recovered at the stop point, with
    /// the watchdog winning ties exactly as the check order dictates.
    fn wp_run<O: BranchOracle + ?Sized>(
        &mut self,
        max_insts: usize,
        watchdog: Option<u64>,
        oracle: &mut O,
        insts: &mut Vec<DynInst>,
    ) -> WrongPathStop {
        // Split borrows: the block cache lends decoded runs while the
        // scratch state advances, so the loop never clones a block `Arc`.
        let Emulator {
            program,
            mem,
            state,
            fault_model,
            cancel,
            block_cache,
            prof,
            ..
        } = self;
        let cancel = cancel.as_ref();
        let limit = watchdog
            .and_then(|w| usize::try_from(w).ok())
            .map_or(max_insts, |w| w.min(max_insts));
        let watchdog_binds = watchdog.is_some_and(|w| w <= max_insts as u64);
        let limit_stop = |pc: Addr| {
            if watchdog_binds {
                WrongPathStop::WatchdogExceeded {
                    pc,
                    limit: watchdog.unwrap_or_default(),
                }
            } else {
                WrongPathStop::BudgetExhausted
            }
        };
        loop {
            if let Some(cause) = cancel.and_then(CancelToken::cause) {
                return WrongPathStop::Cancelled(cause);
            }
            if insts.len() >= limit {
                return limit_stop(state.pc);
            }
            let single;
            let block: &[Instr] = match block_cache {
                Some(cache) => match cache.fetch(program, state.pc, prof) {
                    BlockFetchRef::Block(block) => block,
                    BlockFetchRef::Halt => return WrongPathStop::Halt,
                    BlockFetchRef::Illegal => return WrongPathStop::IllegalPc(state.pc),
                },
                None => match program.instr_at(state.pc) {
                    None => return WrongPathStop::IllegalPc(state.pc),
                    Some(Instr::Halt) => return WrongPathStop::Halt,
                    Some(&instr) => {
                        single = [instr];
                        &single
                    }
                },
            };
            for (k, &instr) in block.iter().enumerate() {
                if k > 0 {
                    if let Some(cause) = cancel.and_then(CancelToken::cause) {
                        return WrongPathStop::Cancelled(cause);
                    }
                    if insts.len() >= limit {
                        return limit_stop(state.pc);
                    }
                }
                let pc = state.pc;
                let out = match execute(state, mem, pc, &instr, fault_model) {
                    Ok(out) => out,
                    Err(fault) => return WrongPathStop::Fault(fault),
                };
                // Register writes go to the scratch state (restored by the
                // caller); stores are suppressed entirely.
                match out.reg_write {
                    Some(RegWrite::Int(r, v)) => state.set_reg(r, v),
                    Some(RegWrite::Fp(f, v)) => state.set_freg(f, v),
                    None => {}
                }
                let mut next_pc = out.next_pc;
                let mut branch = out.branch;
                if let Some(computed) = out.branch {
                    match oracle.next_fetch_pc(pc, &instr, computed) {
                        Some(predicted) => {
                            next_pc = predicted;
                            branch = Some(BranchOutcome {
                                taken: predicted != pc + ffsim_isa::INSTR_BYTES,
                                next_pc: predicted,
                            });
                        }
                        None => {
                            insts.push(DynInst {
                                seq: insts.len() as u64,
                                pc,
                                instr,
                                mem: out.mem,
                                branch,
                                next_pc,
                            });
                            return WrongPathStop::OracleStop;
                        }
                    }
                }
                insts.push(DynInst {
                    seq: insts.len() as u64,
                    pc,
                    instr,
                    mem: out.mem,
                    branch,
                    next_pc,
                });
                state.pc = next_pc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsim_isa::{Asm, Reg};

    fn loop_program() -> Program {
        // x1 = 10; do { x2 += x1; x1 -= 1 } while x1 != 0; halt
        let (x1, x2) = (Reg::new(1), Reg::new(2));
        let mut a = Asm::new();
        a.li(x1, 10);
        a.label("loop");
        a.add(x2, x2, x1);
        a.addi(x1, x1, -1);
        a.bnez(x1, "loop");
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn runs_loop_to_completion() {
        let mut emu = Emulator::new(loop_program()).unwrap();
        let n = emu.run_to_halt(1000).unwrap();
        assert_eq!(emu.state().reg(Reg::new(2)), 55);
        // 1 li + 10 * 3 loop body + halt
        assert_eq!(n, 1 + 30 + 1);
        assert!(emu.is_halted());
        assert_eq!(emu.step(), Err(StepError::Halted));
    }

    #[test]
    fn step_emits_branch_outcomes() {
        let mut emu = Emulator::new(loop_program()).unwrap();
        let mut taken = 0;
        let mut not_taken = 0;
        while let Ok(inst) = emu.step() {
            if let Some(b) = inst.branch {
                if b.taken {
                    taken += 1;
                } else {
                    not_taken += 1;
                }
            }
        }
        assert_eq!(taken, 9, "nine back-edges taken");
        assert_eq!(not_taken, 1, "final iteration falls through");
    }

    #[test]
    fn seq_numbers_are_dense() {
        let mut emu = Emulator::new(loop_program()).unwrap();
        let mut expect = 0;
        while let Ok(inst) = emu.step() {
            assert_eq!(inst.seq, expect);
            expect += 1;
        }
        assert_eq!(emu.instructions_executed(), expect);
    }

    #[test]
    fn stores_commit_on_correct_path() {
        let mut a = Asm::new();
        let (x1, x2) = (Reg::new(1), Reg::new(2));
        a.li(x1, 0x100);
        a.li(x2, 42);
        a.sd(x2, 0, x1);
        a.halt();
        let mut emu = Emulator::new(a.assemble().unwrap()).unwrap();
        emu.run_to_halt(10).unwrap();
        assert_eq!(emu.mem().read_u64(0x100), 42);
    }

    #[test]
    fn illegal_pc_is_a_fault() {
        let mut a = Asm::new();
        a.li(Reg::new(1), 0x9999_0000);
        a.jr(Reg::new(1));
        a.halt();
        let mut emu = Emulator::new(a.assemble().unwrap()).unwrap();
        emu.step().unwrap();
        emu.step().unwrap(); // the jump itself executes fine
        match emu.step() {
            Err(StepError::Fault(Fault::IllegalPc { pc })) => assert_eq!(pc, 0x9999_0000),
            other => panic!("expected illegal pc fault, got {other:?}"),
        }
    }

    #[test]
    fn wrong_path_emulation_preserves_all_state() {
        // Correct path falls through a branch; wrong path (taken side)
        // would overwrite x3 and store to memory.
        let (x1, x3, x4) = (Reg::new(1), Reg::new(3), Reg::new(4));
        let mut a = Asm::new();
        a.li(x1, 0); // branch condition: not taken
        a.li(x4, 0x200);
        a.bnez(x1, "wrong"); // never taken on correct path
        a.li(x3, 1); // correct path
        a.halt();
        a.label("wrong");
        a.li(x3, 99);
        a.sd(x3, 0, x4);
        a.li(x3, 100);
        a.halt();
        let p = a.assemble().unwrap();
        let wrong_target = p.base() + 5 * 4; // label "wrong"

        let mut emu = Emulator::new(p).unwrap();
        emu.step().unwrap();
        emu.step().unwrap();
        let before = emu.checkpoint();
        let bundle = emu.emulate_wrong_path(wrong_target, 64, &mut FollowComputed);
        // State fully restored.
        assert_eq!(emu.state(), &before);
        // Memory untouched despite the wrong-path store.
        assert_eq!(emu.mem().read_u64(0x200), 0);
        // Wrong path executed li, sd, li then stopped at halt.
        assert_eq!(bundle.insts.len(), 3);
        assert_eq!(bundle.stop, WrongPathStop::Halt);
        // The suppressed store still reports its address.
        let store = &bundle.insts[1];
        let mem = store.mem.unwrap();
        assert!(mem.is_store);
        assert_eq!(mem.addr, 0x200);
        // Correct path continues unaffected.
        emu.run_to_halt(10).unwrap();
        assert_eq!(emu.state().reg(x3), 1);
    }

    #[test]
    fn wrong_path_budget_exhaustion() {
        let mut emu = Emulator::new(loop_program()).unwrap();
        emu.step().unwrap(); // li
        let loop_head = emu.state().pc;
        let bundle = emu.emulate_wrong_path(loop_head, 7, &mut FollowComputed);
        assert_eq!(bundle.insts.len(), 7);
        assert_eq!(bundle.stop, WrongPathStop::BudgetExhausted);
    }

    #[test]
    fn wrong_path_illegal_start() {
        let mut emu = Emulator::new(loop_program()).unwrap();
        let bundle = emu.emulate_wrong_path(0xdead_0000, 64, &mut FollowComputed);
        assert!(bundle.insts.is_empty());
        assert_eq!(bundle.stop, WrongPathStop::IllegalPc(0xdead_0000));
    }

    #[test]
    fn wrong_path_oracle_stop() {
        struct StopAtBranch;
        impl BranchOracle for StopAtBranch {
            fn next_fetch_pc(
                &mut self,
                _pc: Addr,
                _instr: &Instr,
                _computed: BranchOutcome,
            ) -> Option<Addr> {
                None
            }
        }
        let p = loop_program();
        let loop_head = p.base() + 4;
        let mut emu = Emulator::new(p).unwrap();
        emu.step().unwrap();
        let bundle = emu.emulate_wrong_path(loop_head, 64, &mut StopAtBranch);
        // add, addi, bnez → oracle stops at the branch (branch included).
        assert_eq!(bundle.insts.len(), 3);
        assert_eq!(bundle.stop, WrongPathStop::OracleStop);
    }

    #[test]
    fn wrong_path_loads_read_architectural_memory() {
        let (x1, x2) = (Reg::new(1), Reg::new(2));
        let mut a = Asm::new();
        a.li(x1, 0x300);
        a.label("wp");
        a.ld(x2, 0, x1);
        a.halt();
        let p = a.assemble().unwrap();
        let wp = p.base() + 4;
        let mut emu = Emulator::new(p).unwrap();
        emu.mem_mut().write_u64(0x300, 1234);
        emu.step().unwrap();
        let bundle = emu.emulate_wrong_path(wp, 8, &mut FollowComputed);
        assert_eq!(bundle.insts[0].mem.unwrap().addr, 0x300);
        // And the register scratch value was really loaded (observable via
        // a dependent wrong-path store address in richer programs); here we
        // just confirm state was restored.
        assert_eq!(emu.state().reg(x2), 0);
    }

    #[test]
    fn valid_entry_constructs_ok() {
        // `Program`'s own constructors assert the entry is in-text, so the
        // emulator-level check is defense-in-depth; exercise the Ok path
        // and the error's rendering.
        assert!(Emulator::new(loop_program()).is_ok());
        let err = EmuError::EntryNotExecutable { entry: 0xdead_0000 };
        assert!(err.to_string().contains("0xdead0000"));
    }

    #[test]
    fn wrong_path_watchdog_cuts_off_and_restores() {
        let mut emu = Emulator::new(loop_program()).unwrap();
        emu.step().unwrap(); // li
        let before = emu.checkpoint();
        let loop_head = emu.state().pc;
        // Watchdog (5) binds before the budget (100).
        let bundle = emu.emulate_wrong_path_bounded(loop_head, 100, Some(5), &mut FollowComputed);
        assert_eq!(bundle.insts.len(), 5);
        assert!(matches!(
            bundle.stop,
            WrongPathStop::WatchdogExceeded { limit: 5, .. }
        ));
        assert_eq!(emu.state(), &before, "watchdog squash restores state");
        // Budget binds first when smaller: stop reason stays BudgetExhausted.
        let bundle = emu.emulate_wrong_path_bounded(loop_head, 3, Some(5), &mut FollowComputed);
        assert_eq!(bundle.stop, WrongPathStop::BudgetExhausted);
    }

    #[test]
    fn wrong_path_fault_carries_cause_and_restores() {
        // Wrong path performs a misaligned load.
        let (x1, x2) = (Reg::new(1), Reg::new(2));
        let mut a = Asm::new();
        a.li(x1, 0x101); // misaligned for an 8-byte load
        a.label("wp");
        a.ld(x2, 0, x1);
        a.halt();
        let p = a.assemble().unwrap();
        let wp = p.base() + 4;
        let mut emu = Emulator::new(p).unwrap();
        emu.step().unwrap();
        let before = emu.checkpoint();
        let bundle = emu.emulate_wrong_path(wp, 8, &mut FollowComputed);
        assert_eq!(
            bundle.stop,
            WrongPathStop::Fault(Fault::Misaligned {
                pc: wp,
                addr: 0x101
            })
        );
        assert!(bundle.insts.is_empty());
        assert_eq!(emu.state(), &before);
    }

    #[test]
    fn page_limit_store_faults_on_correct_path() {
        let (x1, x2) = (Reg::new(1), Reg::new(2));
        let mut a = Asm::new();
        a.li(x1, 0x10_0000);
        a.li(x2, 7);
        a.sd(x2, 0, x1);
        a.halt();
        let mut mem = Memory::new();
        mem.write_u64(0x100, 1); // consume the only allowed page
        mem.set_page_limit(Some(1));
        let mut emu = Emulator::with_memory(a.assemble().unwrap(), mem).unwrap();
        emu.step().unwrap();
        emu.step().unwrap();
        match emu.step() {
            Err(StepError::Fault(Fault::OutOfRange { addr, .. })) => {
                assert_eq!(addr, 0x10_0000);
            }
            other => panic!("expected out-of-range fault, got {other:?}"),
        }
        assert_eq!(
            emu.state().reg(x2),
            7,
            "register state untouched by the faulting store"
        );
    }

    #[test]
    fn digest_is_sensitive_to_state_and_memory() {
        let mut a = Emulator::new(loop_program()).unwrap();
        let mut b = Emulator::new(loop_program()).unwrap();
        assert_eq!(a.digest(), b.digest());
        a.run_to_halt(1000).unwrap();
        assert_ne!(a.digest(), b.digest());
        b.run_to_halt(1000).unwrap();
        assert_eq!(a.digest(), b.digest());
        b.mem_mut().write_u8(0x900, 1);
        assert_ne!(a.digest(), b.digest());
    }
}
