//! # ffsim-emu — the functional simulator (Pin substitute)
//!
//! This crate is the *functional* half of the decoupled functional-first
//! simulator reproducing *“Simulating Wrong-Path Instructions in Decoupled
//! Functional-First Simulation”* (Eyerman et al., ISPASS 2023). The paper
//! uses Intel Pin as the functional frontend; this crate provides the same
//! contract for the custom ISA defined in [`ffsim-isa`]:
//!
//! * [`Emulator`] — executes programs and emits [`DynInst`] records
//!   (address, decoded instruction, memory address, branch outcome),
//! * [`Memory`] / [`ArchState`] — the simulated machine state, with cheap
//!   checkpoints (Pin's `PIN_SaveContext`/`PIN_ExecuteAt` analogues),
//! * [`Emulator::emulate_wrong_path`] — full functional wrong-path
//!   emulation with suppressed stores and faults (paper §III-B),
//! * [`InstrQueue`] — the runahead queue between functional and
//!   performance simulation, with lookahead peeking for the convergence
//!   technique (paper §III-C) and [`FrontendPolicy`] hooks for the
//!   frontend-resident branch predictor replica.
//!
//! # Examples
//!
//! ```
//! use ffsim_emu::{Emulator, InstrQueue, NoFrontendWrongPath};
//! use ffsim_isa::{Asm, Reg};
//!
//! let mut a = Asm::new();
//! a.li(Reg::new(1), 5);
//! a.li(Reg::new(2), 0x1000);
//! a.sd(Reg::new(1), 0, Reg::new(2));
//! a.halt();
//!
//! // Functional-only run:
//! let mut emu = Emulator::new(a.assemble()?)?;
//! emu.run_to_halt(100)?;
//! assert_eq!(emu.mem().read_u64(0x1000), 5);
//!
//! // Or as the frontend of a decoupled simulation:
//! let mut a2 = Asm::new();
//! a2.nop();
//! a2.halt();
//! let mut queue = InstrQueue::new(Emulator::new(a2.assemble()?)?, NoFrontendWrongPath, 256);
//! while let Some(entry) = queue.pop() {
//!     // ... feed entry.inst to a timing model ...
//!     let _ = entry;
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`ffsim-isa`]: ../ffsim_isa/index.html

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod block;
mod cancel;
mod dyninst;
mod emulator;
mod exec;
mod hash;
mod mem;
mod queue;
mod state;

pub use block::{BlockCacheStats, BLOCK_LEN_CAP, DEFAULT_BLOCK_CACHE_BLOCKS};
pub use cancel::{CancelCause, CancelToken};
pub use dyninst::{BranchOutcome, DynInst, MemAccess, WrongPathBundle, WrongPathStop};
pub use emulator::{BranchOracle, EmuError, Emulator, FollowComputed, StepError};
pub use exec::{Fault, FaultModel};
pub use hash::{FxBuildHasher, FxHasher};
pub use mem::{Memory, MemoryLimitError, PAGE_BYTES};
pub use queue::{
    FaultPolicy, FetchSource, FrontendPolicy, InstrQueue, NoFrontendWrongPath, StreamBuf,
    StreamEntry, WrongPathFaultStats, WrongPathRequest,
};
pub use state::ArchState;
