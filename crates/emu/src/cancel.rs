//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a cheap, clonable handle shared between a
//! simulation's hot loops and an external supervisor (a campaign driver's
//! watchdog thread, a signal handler, a test harness). The supervisor
//! *requests* termination by flipping the token; the simulation *observes*
//! the request at its next cancellation point — one relaxed atomic load per
//! executed instruction — and unwinds cleanly through its normal typed
//! error path. Nothing is ever thread-killed: caches, statistics and the
//! architectural state stay consistent, and the caller learns exactly why
//! the run ended.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Why a [`CancelToken`] fired.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CancelCause {
    /// The supervisor asked the run to stop (shutdown, user interrupt).
    Cancelled,
    /// The run exceeded its wall-clock deadline (watchdog).
    DeadlineExceeded,
}

impl fmt::Display for CancelCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelCause::Cancelled => write!(f, "cancelled by supervisor"),
            CancelCause::DeadlineExceeded => write!(f, "wall-clock deadline exceeded"),
        }
    }
}

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

/// A shared cancellation flag checked inside simulation hot loops.
///
/// Clones share state (the token is an `Arc` internally), so a supervisor
/// thread holding one clone can stop a simulation running with another.
/// The fast path — [`CancelToken::cause`] while live — is a single relaxed
/// atomic load, cheap enough to run once per emulated instruction.
///
/// # Examples
///
/// ```
/// use ffsim_emu::{CancelCause, CancelToken};
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert_eq!(token.cause(), None);
/// watcher.expire();
/// assert_eq!(token.cause(), Some(CancelCause::DeadlineExceeded));
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// A live (un-fired) token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cooperative termination ([`CancelCause::Cancelled`]).
    ///
    /// The first cause to fire wins; later calls are no-ops.
    pub fn cancel(&self) {
        let _ = self
            .state
            .compare_exchange(LIVE, CANCELLED, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Marks the wall-clock deadline as exceeded
    /// ([`CancelCause::DeadlineExceeded`]); called by watchdog threads.
    ///
    /// The first cause to fire wins; later calls are no-ops.
    pub fn expire(&self) {
        let _ = self
            .state
            .compare_exchange(LIVE, DEADLINE, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Why the token fired, or `None` while it is live. This is the
    /// cancellation-point check used inside hot loops.
    #[must_use]
    pub fn cause(&self) -> Option<CancelCause> {
        match self.state.load(Ordering::Relaxed) {
            CANCELLED => Some(CancelCause::Cancelled),
            DEADLINE => Some(CancelCause::DeadlineExceeded),
            _ => None,
        }
    }

    /// Whether the token has fired (either cause).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Relaxed) != LIVE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert_eq!(t.cause(), Some(CancelCause::Cancelled));
        assert!(t.is_cancelled());
    }

    #[test]
    fn first_cause_wins() {
        let t = CancelToken::new();
        t.expire();
        t.cancel();
        assert_eq!(t.cause(), Some(CancelCause::DeadlineExceeded));
    }

    #[test]
    fn fires_across_threads() {
        let t = CancelToken::new();
        let c = t.clone();
        std::thread::spawn(move || c.expire()).join().unwrap();
        assert_eq!(t.cause(), Some(CancelCause::DeadlineExceeded));
    }

    #[test]
    fn cause_displays() {
        assert!(CancelCause::Cancelled.to_string().contains("cancelled"));
        assert!(CancelCause::DeadlineExceeded
            .to_string()
            .contains("deadline"));
    }
}
