//! The decoupled instruction queue between the functional and performance
//! simulators.
//!
//! In functional-first simulation the functional simulator *runs ahead*,
//! pushing instruction records into a queue the performance simulator
//! consumes (paper §II). [`InstrQueue`] implements that queue with two
//! extra capabilities the wrong-path techniques rely on:
//!
//! * **lookahead peeking** ([`InstrQueue::peek`]) into the future correct
//!   path — the convergence-exploitation technique scans upcoming
//!   correct-path instructions for a convergence point and their memory
//!   addresses (§III-C);
//! * **wrong-path bundles**: a [`FrontendPolicy`] observes every
//!   correct-path instruction in program order (mirroring the paper's
//!   "copy of the branch predictor model" inside the functional simulator)
//!   and can request full wrong-path emulation at a branch it predicts
//!   mispredicted (§III-B). The resulting [`WrongPathBundle`] travels with
//!   the branch's queue entry.

use crate::dyninst::{DynInst, WrongPathBundle};
use crate::emulator::{BranchOracle, Emulator, StepError};
use crate::exec::Fault;
use ffsim_isa::Addr;
use std::collections::VecDeque;

/// A request to emulate the wrong path of a (predicted-mispredicted)
/// branch, produced by a [`FrontendPolicy`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WrongPathRequest {
    /// First wrong-path pc (the mispredicted direction's target).
    pub start: Addr,
    /// Maximum wrong-path instructions to emulate — the paper uses one
    /// reorder-buffer's worth plus frontend buffers.
    pub max_insts: usize,
}

/// Frontend-side policy observing the correct-path stream.
///
/// Implementations typically hold a replica of the timing model's branch
/// predictor: they predict every branch *before* updating with its actual
/// outcome, and return a [`WrongPathRequest`] when the prediction differs.
/// The policy also serves as the [`BranchOracle`] steering wrong-path
/// branch directions during emulation.
pub trait FrontendPolicy: BranchOracle {
    /// Observes one correct-path instruction in program order, returning a
    /// wrong-path emulation request if this branch is predicted wrongly.
    fn on_instruction(&mut self, inst: &DynInst) -> Option<WrongPathRequest>;
}

/// Policy for simulators that do not generate wrong paths in the functional
/// frontend (the default, instruction-reconstruction and convergence
/// configurations — those reconstruct in the *performance* simulator).
#[derive(Clone, Copy, Default, Debug)]
pub struct NoFrontendWrongPath;

impl BranchOracle for NoFrontendWrongPath {
    fn next_fetch_pc(
        &mut self,
        _pc: Addr,
        _instr: &ffsim_isa::Instr,
        _computed: crate::dyninst::BranchOutcome,
    ) -> Option<Addr> {
        None
    }
}

impl FrontendPolicy for NoFrontendWrongPath {
    fn on_instruction(&mut self, _inst: &DynInst) -> Option<WrongPathRequest> {
        None
    }
}

/// One queue slot: a correct-path instruction, plus the emulated wrong
/// path hanging off it when the frontend policy predicted a misprediction.
#[derive(Clone, PartialEq, Debug)]
pub struct StreamEntry {
    /// The correct-path instruction.
    pub inst: DynInst,
    /// The emulated wrong path, in `WrongPathEmulation` configurations.
    pub wrong_path: Option<WrongPathBundle>,
}

/// The functional→performance instruction queue.
///
/// # Examples
///
/// ```
/// use ffsim_emu::{Emulator, InstrQueue, NoFrontendWrongPath};
/// use ffsim_isa::{Asm, Reg};
///
/// let mut a = Asm::new();
/// a.li(Reg::new(1), 7);
/// a.addi(Reg::new(1), Reg::new(1), 1);
/// a.halt();
/// let mut q = InstrQueue::new(Emulator::new(a.assemble()?), NoFrontendWrongPath, 128);
/// assert_eq!(q.peek(2).unwrap().inst.instr.to_string(), "halt");
/// let first = q.pop().unwrap();
/// assert_eq!(first.inst.pc, 0x1_0000);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct InstrQueue<P> {
    emu: Emulator,
    policy: P,
    buf: VecDeque<StreamEntry>,
    depth: usize,
    ended: bool,
    fault: Option<Fault>,
}

impl<P: FrontendPolicy> InstrQueue<P> {
    /// Creates a queue that keeps up to `depth` instructions of runahead.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(emu: Emulator, policy: P, depth: usize) -> InstrQueue<P> {
        assert!(depth > 0, "queue depth must be positive");
        InstrQueue {
            emu,
            policy,
            buf: VecDeque::with_capacity(depth),
            depth,
            ended: false,
            fault: None,
        }
    }

    fn refill_to(&mut self, want: usize) {
        while self.buf.len() < want && !self.ended {
            match self.emu.step() {
                Ok(inst) => {
                    let wrong_path = self
                        .policy
                        .on_instruction(&inst)
                        .map(|req| {
                            self.emu
                                .emulate_wrong_path(req.start, req.max_insts, &mut self.policy)
                        });
                    self.buf.push_back(StreamEntry { inst, wrong_path });
                }
                Err(StepError::Halted) => self.ended = true,
                Err(StepError::Fault(f)) => {
                    self.fault = Some(f);
                    self.ended = true;
                }
            }
        }
    }

    /// Pops the next correct-path entry, or `None` at end of stream.
    pub fn pop(&mut self) -> Option<StreamEntry> {
        self.refill_to(1);
        let entry = self.buf.pop_front();
        // Keep the runahead window full so peeks after pops see far ahead.
        self.refill_to(self.depth);
        entry
    }

    /// Peeks `index` entries ahead (0 = next to pop), extending the
    /// functional runahead on demand up to the queue depth.
    ///
    /// Returns `None` past the end of the program or beyond the depth.
    pub fn peek(&mut self, index: usize) -> Option<&StreamEntry> {
        if index >= self.depth {
            return None;
        }
        self.refill_to(index + 1);
        self.buf.get(index)
    }

    /// Number of entries currently buffered.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether the stream has ended and the buffer is drained.
    #[must_use]
    pub fn is_exhausted(&mut self) -> bool {
        self.refill_to(1);
        self.buf.is_empty()
    }

    /// The correct-path fault that ended the stream, if any.
    #[must_use]
    pub fn fault(&self) -> Option<Fault> {
        self.fault
    }

    /// The frontend policy.
    #[must_use]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the frontend policy (e.g. to read replica stats).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// The underlying emulator (e.g. for memory validation after a run).
    #[must_use]
    pub fn emulator(&self) -> &Emulator {
        &self.emu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dyninst::BranchOutcome;
    use ffsim_isa::{Asm, Instr, Program, Reg};

    fn counted_program(n: i64) -> Program {
        let x = Reg::new(1);
        let mut a = Asm::new();
        a.li(x, n);
        a.label("loop");
        a.addi(x, x, -1);
        a.bnez(x, "loop");
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn pop_yields_program_order() {
        let mut q = InstrQueue::new(
            Emulator::new(counted_program(3)),
            NoFrontendWrongPath,
            16,
        );
        let mut seqs = Vec::new();
        while let Some(e) = q.pop() {
            seqs.push(e.inst.seq);
        }
        assert_eq!(seqs, (0..8).collect::<Vec<u64>>());
        assert!(q.is_exhausted());
        assert!(q.fault().is_none());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = InstrQueue::new(
            Emulator::new(counted_program(3)),
            NoFrontendWrongPath,
            16,
        );
        let p0 = q.peek(0).unwrap().inst;
        let p3 = q.peek(3).unwrap().inst;
        assert_eq!(p0.seq, 0);
        assert_eq!(p3.seq, 3);
        assert_eq!(q.pop().unwrap().inst, p0);
        assert_eq!(q.peek(2).unwrap().inst, p3);
    }

    #[test]
    fn peek_beyond_depth_is_none() {
        let mut q = InstrQueue::new(
            Emulator::new(counted_program(100)),
            NoFrontendWrongPath,
            8,
        );
        assert!(q.peek(8).is_none());
        assert!(q.peek(7).is_some());
    }

    #[test]
    fn peek_past_end_is_none() {
        let mut q = InstrQueue::new(
            Emulator::new(counted_program(1)),
            NoFrontendWrongPath,
            64,
        );
        // Program is li, addi, bnez (not taken), halt = 4 instructions.
        assert!(q.peek(3).is_some());
        assert!(q.peek(4).is_none());
    }

    /// Policy that requests wrong-path emulation at every not-taken
    /// conditional branch (pretending it predicted taken).
    struct AlwaysWrong;
    impl BranchOracle for AlwaysWrong {
        fn next_fetch_pc(
            &mut self,
            _pc: ffsim_isa::Addr,
            _instr: &Instr,
            computed: BranchOutcome,
        ) -> Option<ffsim_isa::Addr> {
            Some(computed.next_pc)
        }
    }
    impl FrontendPolicy for AlwaysWrong {
        fn on_instruction(&mut self, inst: &DynInst) -> Option<WrongPathRequest> {
            let b = inst.branch?;
            if matches!(inst.instr, Instr::Branch { .. }) && !b.taken {
                // Predicted taken, was not taken → wrong path is the target.
                let target = inst.instr.direct_target().unwrap();
                Some(WrongPathRequest {
                    start: target,
                    max_insts: 16,
                })
            } else {
                None
            }
        }
    }

    #[test]
    fn wrong_path_bundles_attach_to_branches() {
        let mut q = InstrQueue::new(Emulator::new(counted_program(3)), AlwaysWrong, 16);
        let mut bundles = 0;
        let mut bundle_len = 0;
        while let Some(e) = q.pop() {
            if let Some(wp) = e.wrong_path {
                bundles += 1;
                bundle_len = wp.insts.len();
                assert!(e.inst.instr.is_branch());
            }
        }
        // Only the final (not-taken) bnez gets a bundle.
        assert_eq!(bundles, 1);
        // Wrong path re-enters the loop: addi, bnez, addi, bnez, ... with
        // x1 = 0 decremented to negative values, bnez stays taken until the
        // 16-instruction budget runs out.
        assert_eq!(bundle_len, 16);
    }

    #[test]
    fn fault_terminates_stream_and_is_reported() {
        let mut a = Asm::new();
        a.li(Reg::new(1), 0x33); // misaligned for an 8-byte load
        a.ld(Reg::new(2), 0, Reg::new(1));
        a.halt();
        let mut q = InstrQueue::new(
            Emulator::new(a.assemble().unwrap()),
            NoFrontendWrongPath,
            4,
        );
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 1, "only the li executes");
        assert!(q.fault().is_some());
    }
}
