//! The decoupled instruction queue between the functional and performance
//! simulators.
//!
//! In functional-first simulation the functional simulator *runs ahead*,
//! pushing instruction records into a queue the performance simulator
//! consumes (paper §II). [`InstrQueue`] implements that queue with two
//! extra capabilities the wrong-path techniques rely on:
//!
//! * **lookahead peeking** ([`InstrQueue::peek`]) into the future correct
//!   path — the convergence-exploitation technique scans upcoming
//!   correct-path instructions for a convergence point and their memory
//!   addresses (§III-C);
//! * **wrong-path bundles**: a [`FrontendPolicy`] observes every
//!   correct-path instruction in program order (mirroring the paper's
//!   "copy of the branch predictor model" inside the functional simulator)
//!   and can request full wrong-path emulation at a branch it predicts
//!   mispredicted (§III-B). The resulting [`WrongPathBundle`] travels with
//!   the branch's queue entry.

use crate::cancel::CancelCause;
use crate::dyninst::{DynInst, WrongPathBundle, WrongPathStop};
use crate::emulator::{BranchOracle, Emulator, StepError};
use crate::exec::Fault;
use ffsim_isa::Addr;
use ffsim_obs::{EventRing, Phase, ProfHandle, TraceEvent, TraceEventKind, TraceSource};
use std::collections::VecDeque;

/// What to do when a fault (or watchdog trip) occurs during *wrong-path*
/// emulation.
///
/// Correct-path faults always terminate the stream and surface as a typed
/// error — they indicate a workload bug. Wrong-path faults are a normal
/// consequence of speculation; the default mirrors hardware, which squashes
/// the speculative work and carries on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FaultPolicy {
    /// Restore the checkpoint, keep the already-emulated wrong-path prefix
    /// (the timing model plays it and squashes it, as hardware would), count
    /// the event, and resume the correct path. The default.
    #[default]
    SquashWrongPath,
    /// Treat any wrong-path fault as fatal: end the stream and report the
    /// fault. Useful for debugging workloads and frontend policies.
    AbortRun,
}

/// Counters for wrong-path fault handling under
/// [`FaultPolicy::SquashWrongPath`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WrongPathFaultStats {
    /// Wrong paths that ended in a fault and were squashed.
    pub squashed_faults: u64,
    /// Wrong paths cut off by the watchdog.
    pub watchdog_trips: u64,
    /// Wrong paths that ran off the program text (wild fetch address).
    /// Counted under either policy: leaving the text is normal speculative
    /// behaviour, not a fault.
    pub illegal_pc_stops: u64,
}

/// A request to emulate the wrong path of a (predicted-mispredicted)
/// branch, produced by a [`FrontendPolicy`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WrongPathRequest {
    /// First wrong-path pc (the mispredicted direction's target).
    pub start: Addr,
    /// Maximum wrong-path instructions to emulate — the paper uses one
    /// reorder-buffer's worth plus frontend buffers.
    pub max_insts: usize,
}

/// Frontend-side policy observing the correct-path stream.
///
/// Implementations typically hold a replica of the timing model's branch
/// predictor: they predict every branch *before* updating with its actual
/// outcome, and return a [`WrongPathRequest`] when the prediction differs.
/// The policy also serves as the [`BranchOracle`] steering wrong-path
/// branch directions during emulation.
pub trait FrontendPolicy: BranchOracle {
    /// Observes one correct-path instruction in program order, returning a
    /// wrong-path emulation request if this branch is predicted wrongly.
    fn on_instruction(&mut self, inst: &DynInst) -> Option<WrongPathRequest>;
}

/// Policy for simulators that do not generate wrong paths in the functional
/// frontend (the default, instruction-reconstruction and convergence
/// configurations — those reconstruct in the *performance* simulator).
#[derive(Clone, Copy, Default, Debug)]
pub struct NoFrontendWrongPath;

impl BranchOracle for NoFrontendWrongPath {
    fn next_fetch_pc(
        &mut self,
        _pc: Addr,
        _instr: &ffsim_isa::Instr,
        _computed: crate::dyninst::BranchOutcome,
    ) -> Option<Addr> {
        None
    }
}

impl FrontendPolicy for NoFrontendWrongPath {
    fn on_instruction(&mut self, _inst: &DynInst) -> Option<WrongPathRequest> {
        None
    }
}

/// One queue slot: a correct-path instruction, plus the emulated wrong
/// path hanging off it when the frontend policy predicted a misprediction.
#[derive(Clone, PartialEq, Debug)]
pub struct StreamEntry {
    /// The correct-path instruction.
    pub inst: DynInst,
    /// The emulated wrong path, in `WrongPathEmulation` configurations.
    pub wrong_path: Option<WrongPathBundle>,
}

/// A reusable, caller-owned batch of [`StreamEntry`]s filled by
/// [`FetchSource::fill`]. The consumer clears and refills the same buffer
/// every batch, so the per-instruction handoff cost (a virtual `pop` call
/// plus `VecDeque` bookkeeping) is paid once per *run* of instructions.
#[derive(Clone, Default, Debug)]
pub struct StreamBuf {
    entries: Vec<StreamEntry>,
}

impl StreamBuf {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> StreamBuf {
        StreamBuf::default()
    }

    /// An empty buffer with room for `capacity` entries.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> StreamBuf {
        StreamBuf {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Drops all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Appends one entry (used by the default [`FetchSource::fill`]).
    pub fn push(&mut self, entry: StreamEntry) {
        self.entries.push(entry);
    }

    /// The buffered entries, in program order.
    #[must_use]
    pub fn entries(&self) -> &[StreamEntry] {
        &self.entries
    }

    /// Number of buffered entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The functional frontend as the performance simulator consumes it: a
/// program-order stream of [`StreamEntry`]s with lookahead peeking, plus
/// the end-of-stream diagnostics (fault, cancellation, trace) the
/// simulator reads after the run.
///
/// This is the seam between the emu-side view (an [`InstrQueue`] carrying
/// some [`FrontendPolicy`]) and the core-side wrong-path techniques: a
/// technique selects its frontend wiring by building the queue/policy pair
/// it needs and handing it over as a `Box<dyn FetchSource>`, so the
/// simulator's run loop is independent of the concrete policy type.
pub trait FetchSource: Send + std::fmt::Debug {
    /// Pops the next correct-path entry, or `None` at end of stream.
    fn pop(&mut self) -> Option<StreamEntry>;
    /// Batched pop: appends up to `max` entries to `buf` and returns how
    /// many were delivered. Exactly equivalent to `max` consecutive
    /// [`FetchSource::pop`] calls (same entries, same order, same
    /// emulator-side runahead), delivered in one virtual call so the hot
    /// loop touches the seam once per batch. Fewer than `max` entries
    /// (possibly zero) means the stream ended mid-batch.
    fn fill(&mut self, buf: &mut StreamBuf, max: usize) -> usize {
        let mut delivered = 0;
        while delivered < max {
            match self.pop() {
                Some(entry) => {
                    buf.push(entry);
                    delivered += 1;
                }
                None => break,
            }
        }
        delivered
    }
    /// Peeks `index` entries ahead (0 = next to pop) without consuming.
    fn peek(&mut self, index: usize) -> Option<&StreamEntry>;
    /// The fault that ended the stream, if any.
    fn fault(&self) -> Option<Fault>;
    /// Whether the stream-ending fault occurred on a wrong path.
    fn fault_was_wrong_path(&self) -> bool;
    /// Wrong-path squash counters.
    fn fault_stats(&self) -> WrongPathFaultStats;
    /// The cancellation cause that ended the stream, if any.
    fn cancelled(&self) -> Option<CancelCause>;
    /// The underlying functional emulator (state digests, validation).
    fn emulator(&self) -> &Emulator;
    /// Drains the frontend event ring (oldest first).
    fn take_trace(&mut self) -> Vec<TraceEvent>;
    /// Events evicted from the frontend event ring because it was full.
    fn trace_dropped(&self) -> u64;
    /// Installs the simulator's shared phase profiler so functional-side
    /// work (`emu_exec`, `emu_handoff`) is attributed on the same nesting
    /// stack as the timing loop's scopes. The default ignores the handle:
    /// a source that does not profile simply contributes no phases.
    fn install_profiler(&mut self, prof: ProfHandle) {
        let _ = prof;
    }
}

impl<P: FrontendPolicy + Send + std::fmt::Debug> FetchSource for InstrQueue<P> {
    fn pop(&mut self) -> Option<StreamEntry> {
        InstrQueue::pop(self)
    }

    fn fill(&mut self, buf: &mut StreamBuf, max: usize) -> usize {
        InstrQueue::fill(self, buf, max)
    }

    fn peek(&mut self, index: usize) -> Option<&StreamEntry> {
        InstrQueue::peek(self, index)
    }

    fn fault(&self) -> Option<Fault> {
        InstrQueue::fault(self)
    }

    fn fault_was_wrong_path(&self) -> bool {
        InstrQueue::fault_was_wrong_path(self)
    }

    fn fault_stats(&self) -> WrongPathFaultStats {
        InstrQueue::fault_stats(self)
    }

    fn cancelled(&self) -> Option<CancelCause> {
        InstrQueue::cancelled(self)
    }

    fn emulator(&self) -> &Emulator {
        InstrQueue::emulator(self)
    }

    fn take_trace(&mut self) -> Vec<TraceEvent> {
        InstrQueue::take_trace(self)
    }

    fn trace_dropped(&self) -> u64 {
        InstrQueue::trace_dropped(self)
    }

    fn install_profiler(&mut self, prof: ProfHandle) {
        InstrQueue::set_profiler(self, prof);
    }
}

/// The functional→performance instruction queue.
///
/// # Examples
///
/// ```
/// use ffsim_emu::{Emulator, InstrQueue, NoFrontendWrongPath};
/// use ffsim_isa::{Asm, Reg};
///
/// let mut a = Asm::new();
/// a.li(Reg::new(1), 7);
/// a.addi(Reg::new(1), Reg::new(1), 1);
/// a.halt();
/// let mut q = InstrQueue::new(Emulator::new(a.assemble()?)?, NoFrontendWrongPath, 128);
/// assert_eq!(q.peek(2).unwrap().inst.instr.to_string(), "halt");
/// let first = q.pop().unwrap();
/// assert_eq!(first.inst.pc, 0x1_0000);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct InstrQueue<P> {
    emu: Emulator,
    policy: P,
    buf: VecDeque<StreamEntry>,
    depth: usize,
    ended: bool,
    fault: Option<Fault>,
    fault_on_wrong_path: bool,
    fault_policy: FaultPolicy,
    watchdog: Option<u64>,
    wp_stats: WrongPathFaultStats,
    cancelled: Option<CancelCause>,
    trace: EventRing,
    prof: ProfHandle,
}

impl<P: FrontendPolicy> InstrQueue<P> {
    /// Creates a queue that keeps up to `depth` instructions of runahead.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero (internal invariant: `SimConfig`
    /// validation rejects a zero depth before construction).
    #[must_use]
    pub fn new(emu: Emulator, policy: P, depth: usize) -> InstrQueue<P> {
        assert!(depth > 0, "queue depth must be positive");
        InstrQueue {
            emu,
            policy,
            buf: VecDeque::with_capacity(depth),
            depth,
            ended: false,
            fault: None,
            fault_on_wrong_path: false,
            fault_policy: FaultPolicy::default(),
            watchdog: None,
            wp_stats: WrongPathFaultStats::default(),
            cancelled: None,
            trace: EventRing::disabled(),
            prof: ProfHandle::disabled(),
        }
    }

    /// Selects the wrong-path [`FaultPolicy`] (default: squash).
    #[must_use]
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> InstrQueue<P> {
        self.fault_policy = policy;
        self
    }

    /// Bounds every wrong path to at most `watchdog` instructions, on top
    /// of the per-request budget. A trip is handled per the fault policy.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Option<u64>) -> InstrQueue<P> {
        self.watchdog = watchdog;
        self
    }

    /// Installs an event ring recording frontend wrong-path events
    /// (entry/exit, watchdog trips, fault squashes). Timestamps are
    /// emulated-instruction sequence numbers. A disabled ring (the
    /// default) costs one branch per potential event.
    #[must_use]
    pub fn with_trace(mut self, trace: EventRing) -> InstrQueue<P> {
        self.trace = trace;
        self
    }

    /// Installs a shared phase profiler attributing functional-side work:
    /// raw emulator stepping (correct and wrong path) as
    /// [`Phase::EmuExec`], the surrounding refill/handoff bookkeeping as
    /// [`Phase::EmuHandoff`]. A disabled handle (the default) costs one
    /// branch per refill. The handle is shared with the emulator so block
    /// decodes show up as [`Phase::BlockDecode`](ffsim_obs::Phase) nested
    /// under the emu scopes.
    pub fn set_profiler(&mut self, prof: ProfHandle) {
        self.emu.set_profiler(prof.clone());
        self.prof = prof;
    }

    /// Drains the frontend event ring (oldest first).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take()
    }

    /// Events evicted from the frontend event ring because it was full.
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.trace.dropped()
    }

    fn refill_to(&mut self, want: usize) {
        if self.buf.len() >= want || self.ended {
            return;
        }
        self.prof.enter(Phase::EmuHandoff);
        while self.buf.len() < want && !self.ended {
            self.prof.enter(Phase::EmuExec);
            let stepped = self.emu.step();
            self.prof.exit();
            match stepped {
                Ok(inst) => {
                    let req = self.policy.on_instruction(&inst);
                    let mut wrong_path = req.map(|req| {
                        self.prof.enter(Phase::EmuExec);
                        let bundle = self.emu.emulate_wrong_path_bounded(
                            req.start,
                            req.max_insts,
                            self.watchdog,
                            &mut self.policy,
                        );
                        self.prof.exit();
                        bundle
                    });
                    if let Some(bundle) = &wrong_path {
                        if let WrongPathStop::Cancelled(cause) = bundle.stop {
                            // Cooperative cancellation mid-wrong-path: drop
                            // the partial bundle, deliver the already-
                            // retired correct path, and end the stream.
                            self.cancelled = Some(cause);
                            self.ended = true;
                            self.buf.push_back(StreamEntry {
                                inst,
                                wrong_path: None,
                            });
                            continue;
                        }
                        if matches!(bundle.stop, WrongPathStop::IllegalPc(_)) {
                            self.wp_stats.illegal_pc_stops += 1;
                        }
                        if let Some(fault) = Self::bundle_fault(bundle) {
                            match self.fault_policy {
                                FaultPolicy::SquashWrongPath => match bundle.stop {
                                    WrongPathStop::WatchdogExceeded { .. } => {
                                        self.wp_stats.watchdog_trips += 1;
                                    }
                                    _ => self.wp_stats.squashed_faults += 1,
                                },
                                FaultPolicy::AbortRun => {
                                    self.fault = Some(fault);
                                    self.fault_on_wrong_path = true;
                                    self.ended = true;
                                    // The aborted bundle is not handed to the
                                    // timing model.
                                    wrong_path = None;
                                }
                            }
                        }
                    }
                    if self.trace.is_enabled() {
                        if let (Some(req), Some(bundle)) = (req, &wrong_path) {
                            let ts = inst.seq;
                            let frontend = |kind| TraceEvent {
                                ts,
                                source: TraceSource::Frontend,
                                kind,
                            };
                            let n = bundle.insts.len() as u64;
                            let stop = bundle.stop;
                            self.trace.record(|| {
                                frontend(TraceEventKind::WrongPathEnter { pc: req.start })
                            });
                            match stop {
                                WrongPathStop::WatchdogExceeded { pc, limit } => {
                                    self.trace.record(|| {
                                        frontend(TraceEventKind::WatchdogTrip { pc, limit })
                                    });
                                }
                                WrongPathStop::Fault(_) => {
                                    self.trace.record(|| {
                                        frontend(TraceEventKind::Squash { instructions: n })
                                    });
                                }
                                _ => {}
                            }
                            self.trace.record(|| {
                                frontend(TraceEventKind::WrongPathExit { instructions: n })
                            });
                        }
                    }
                    self.buf.push_back(StreamEntry { inst, wrong_path });
                }
                Err(StepError::Halted) => self.ended = true,
                Err(StepError::Fault(f)) => {
                    self.fault = Some(f);
                    self.ended = true;
                }
                Err(StepError::Cancelled(cause)) => {
                    self.cancelled = Some(cause);
                    self.ended = true;
                }
            }
        }
        self.prof.exit();
    }

    /// The fault a bundle's stop reason corresponds to, if any.
    fn bundle_fault(bundle: &WrongPathBundle) -> Option<Fault> {
        match bundle.stop {
            WrongPathStop::Fault(f) => Some(f),
            WrongPathStop::WatchdogExceeded { pc, limit } => {
                Some(Fault::WatchdogExceeded { pc, limit })
            }
            _ => None,
        }
    }

    /// Pops the next correct-path entry, or `None` at end of stream.
    pub fn pop(&mut self) -> Option<StreamEntry> {
        self.refill_to(1);
        let entry = self.buf.pop_front();
        // Keep the runahead window full so peeks after pops see far ahead.
        self.refill_to(self.depth);
        entry
    }

    /// Batched pop (see [`FetchSource::fill`]): delivers up to `max`
    /// entries into `out` in one refill. Equivalent to `max` consecutive
    /// [`InstrQueue::pop`]s — each pop refills to `depth` after draining
    /// one entry, so after `max` pops the emulator has produced
    /// `delivered + depth` entries total; this method reaches the same
    /// point with a single `refill_to(max + depth)`, preserving the exact
    /// production order (and thus replica-predictor state, wrong-path
    /// checkpoints and trace events).
    pub fn fill(&mut self, out: &mut StreamBuf, max: usize) -> usize {
        self.refill_to(max.saturating_add(self.depth));
        let take = max.min(self.buf.len());
        out.entries.extend(self.buf.drain(..take));
        take
    }

    /// Peeks `index` entries ahead (0 = next to pop), extending the
    /// functional runahead on demand up to the queue depth.
    ///
    /// Returns `None` past the end of the program or beyond the depth.
    pub fn peek(&mut self, index: usize) -> Option<&StreamEntry> {
        if index >= self.depth {
            return None;
        }
        self.refill_to(index + 1);
        self.buf.get(index)
    }

    /// Number of entries currently buffered.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether the stream has ended and the buffer is drained.
    #[must_use]
    pub fn is_exhausted(&mut self) -> bool {
        self.refill_to(1);
        self.buf.is_empty()
    }

    /// The fault that ended the stream, if any. With
    /// [`FaultPolicy::SquashWrongPath`] (the default) this is always a
    /// correct-path fault; under [`FaultPolicy::AbortRun`] it may also be a
    /// wrong-path fault (see [`InstrQueue::fault_was_wrong_path`]).
    #[must_use]
    pub fn fault(&self) -> Option<Fault> {
        self.fault
    }

    /// Whether the stream-ending fault occurred during wrong-path emulation
    /// (only possible under [`FaultPolicy::AbortRun`]).
    #[must_use]
    pub fn fault_was_wrong_path(&self) -> bool {
        self.fault_on_wrong_path
    }

    /// Wrong-path squash counters (see [`WrongPathFaultStats`]).
    #[must_use]
    pub fn fault_stats(&self) -> WrongPathFaultStats {
        self.wp_stats
    }

    /// The cancellation cause that ended the stream, if the emulator's
    /// [`CancelToken`](crate::CancelToken) fired mid-run.
    #[must_use]
    pub fn cancelled(&self) -> Option<CancelCause> {
        self.cancelled
    }

    /// The frontend policy.
    #[must_use]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the frontend policy (e.g. to read replica stats).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// The underlying emulator (e.g. for memory validation after a run).
    #[must_use]
    pub fn emulator(&self) -> &Emulator {
        &self.emu
    }

    /// Mutable access to the underlying emulator (e.g. to configure the
    /// fault model before streaming).
    pub fn emulator_mut(&mut self) -> &mut Emulator {
        &mut self.emu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dyninst::BranchOutcome;
    use ffsim_isa::{Asm, Instr, Program, Reg};

    fn counted_program(n: i64) -> Program {
        let x = Reg::new(1);
        let mut a = Asm::new();
        a.li(x, n);
        a.label("loop");
        a.addi(x, x, -1);
        a.bnez(x, "loop");
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn pop_yields_program_order() {
        let mut q = InstrQueue::new(
            Emulator::new(counted_program(3)).unwrap(),
            NoFrontendWrongPath,
            16,
        );
        let mut seqs = Vec::new();
        while let Some(e) = q.pop() {
            seqs.push(e.inst.seq);
        }
        assert_eq!(seqs, (0..8).collect::<Vec<u64>>());
        assert!(q.is_exhausted());
        assert!(q.fault().is_none());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = InstrQueue::new(
            Emulator::new(counted_program(3)).unwrap(),
            NoFrontendWrongPath,
            16,
        );
        let p0 = q.peek(0).unwrap().inst;
        let p3 = q.peek(3).unwrap().inst;
        assert_eq!(p0.seq, 0);
        assert_eq!(p3.seq, 3);
        assert_eq!(q.pop().unwrap().inst, p0);
        assert_eq!(q.peek(2).unwrap().inst, p3);
    }

    #[test]
    fn peek_beyond_depth_is_none() {
        let mut q = InstrQueue::new(
            Emulator::new(counted_program(100)).unwrap(),
            NoFrontendWrongPath,
            8,
        );
        assert!(q.peek(8).is_none());
        assert!(q.peek(7).is_some());
    }

    #[test]
    fn peek_past_end_is_none() {
        let mut q = InstrQueue::new(
            Emulator::new(counted_program(1)).unwrap(),
            NoFrontendWrongPath,
            64,
        );
        // Program is li, addi, bnez (not taken), halt = 4 instructions.
        assert!(q.peek(3).is_some());
        assert!(q.peek(4).is_none());
    }

    /// Policy that requests wrong-path emulation at every not-taken
    /// conditional branch (pretending it predicted taken).
    struct AlwaysWrong;
    impl BranchOracle for AlwaysWrong {
        fn next_fetch_pc(
            &mut self,
            _pc: ffsim_isa::Addr,
            _instr: &Instr,
            computed: BranchOutcome,
        ) -> Option<ffsim_isa::Addr> {
            Some(computed.next_pc)
        }
    }
    impl FrontendPolicy for AlwaysWrong {
        fn on_instruction(&mut self, inst: &DynInst) -> Option<WrongPathRequest> {
            let b = inst.branch?;
            if matches!(inst.instr, Instr::Branch { .. }) && !b.taken {
                // Predicted taken, was not taken → wrong path is the target.
                let target = inst.instr.direct_target().unwrap();
                Some(WrongPathRequest {
                    start: target,
                    max_insts: 16,
                })
            } else {
                None
            }
        }
    }

    #[test]
    fn wrong_path_bundles_attach_to_branches() {
        let mut q = InstrQueue::new(Emulator::new(counted_program(3)).unwrap(), AlwaysWrong, 16);
        let mut bundles = 0;
        let mut bundle_len = 0;
        while let Some(e) = q.pop() {
            if let Some(wp) = e.wrong_path {
                bundles += 1;
                bundle_len = wp.insts.len();
                assert!(e.inst.instr.is_branch());
            }
        }
        // Only the final (not-taken) bnez gets a bundle.
        assert_eq!(bundles, 1);
        // Wrong path re-enters the loop: addi, bnez, addi, bnez, ... with
        // x1 = 0 decremented to negative values, bnez stays taken until the
        // 16-instruction budget runs out.
        assert_eq!(bundle_len, 16);
    }

    #[test]
    fn fill_matches_pop_sequence() {
        // Use the wrong-path-requesting policy so bundles and runahead
        // production both participate in the equivalence.
        let stream = |batch: Option<usize>| {
            let mut q =
                InstrQueue::new(Emulator::new(counted_program(20)).unwrap(), AlwaysWrong, 8);
            let mut entries = Vec::new();
            match batch {
                None => {
                    while let Some(e) = q.pop() {
                        entries.push(e);
                    }
                }
                Some(max) => {
                    let mut buf = StreamBuf::with_capacity(max);
                    loop {
                        buf.clear();
                        if q.fill(&mut buf, max) == 0 {
                            break;
                        }
                        entries.extend_from_slice(buf.entries());
                    }
                }
            }
            (entries, q.emulator().digest())
        };
        let baseline = stream(None);
        for batch in [1, 3, 16, 256] {
            assert_eq!(stream(Some(batch)), baseline, "batch size {batch}");
        }
    }

    #[test]
    fn fill_delivers_partial_batch_at_end_of_stream() {
        let mut q = InstrQueue::new(
            Emulator::new(counted_program(1)).unwrap(),
            NoFrontendWrongPath,
            4,
        );
        let mut buf = StreamBuf::new();
        // Program is li, addi, bnez (not taken), halt = 4 instructions.
        assert_eq!(q.fill(&mut buf, 64), 4);
        assert_eq!(buf.len(), 4);
        assert!(!buf.is_empty());
        assert_eq!(q.fill(&mut buf, 64), 0, "stream ended");
        assert!(q.is_exhausted());
    }

    #[test]
    fn fault_terminates_stream_and_is_reported() {
        let mut a = Asm::new();
        a.li(Reg::new(1), 0x33); // misaligned for an 8-byte load
        a.ld(Reg::new(2), 0, Reg::new(1));
        a.halt();
        let mut q = InstrQueue::new(
            Emulator::new(a.assemble().unwrap()).unwrap(),
            NoFrontendWrongPath,
            4,
        );
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 1, "only the li executes");
        assert!(q.fault().is_some());
        assert!(!q.fault_was_wrong_path());
    }

    /// Correct path: two li's, a not-taken bnez, halt. The wrong path at
    /// the branch target immediately performs a misaligned load.
    fn faulting_wrong_path_program() -> Program {
        let (x1, x2, x3) = (Reg::new(1), Reg::new(2), Reg::new(3));
        let mut a = Asm::new();
        a.li(x1, 0x33); // misaligned base for an 8-byte load
        a.li(x2, 0);
        a.bnez(x2, "wrong"); // never taken on the correct path
        a.halt();
        a.label("wrong");
        a.ld(x3, 0, x1);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn wrong_path_fault_squashes_by_default() {
        let mut q = InstrQueue::new(
            Emulator::new(faulting_wrong_path_program()).unwrap(),
            AlwaysWrong,
            16,
        );
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(
            n, 4,
            "full correct path retires despite the wrong-path fault"
        );
        assert!(q.fault().is_none());
        assert_eq!(q.fault_stats().squashed_faults, 1);
        assert_eq!(q.fault_stats().watchdog_trips, 0);
    }

    #[test]
    fn wrong_path_fault_aborts_under_abort_policy() {
        let mut q = InstrQueue::new(
            Emulator::new(faulting_wrong_path_program()).unwrap(),
            AlwaysWrong,
            16,
        )
        .with_fault_policy(FaultPolicy::AbortRun);
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped.len(), 3, "stream ends at the branch");
        assert!(popped[2].wrong_path.is_none(), "aborted bundle is dropped");
        assert!(matches!(q.fault(), Some(Fault::Misaligned { .. })));
        assert!(q.fault_was_wrong_path());
    }

    #[test]
    fn watchdog_trips_are_counted_and_squash() {
        let mut q = InstrQueue::new(Emulator::new(counted_program(3)).unwrap(), AlwaysWrong, 16)
            .with_watchdog(Some(4));
        let mut n = 0;
        let mut wp_len = 0;
        while let Some(e) = q.pop() {
            n += 1;
            if let Some(wp) = e.wrong_path {
                wp_len = wp.insts.len();
            }
        }
        assert_eq!(n, 8, "correct path unaffected");
        assert_eq!(wp_len, 4, "wrong path cut off at the watchdog");
        assert_eq!(q.fault_stats().watchdog_trips, 1);
        assert!(q.fault().is_none());
    }

    #[test]
    fn cancellation_ends_stream_cooperatively() {
        use crate::cancel::CancelToken;
        let token = CancelToken::new();
        let mut emu = Emulator::new(counted_program(1000)).unwrap();
        emu.set_cancel_token(Some(token.clone()));
        let mut q = InstrQueue::new(emu, NoFrontendWrongPath, 4);
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
            if n == 10 {
                token.cancel();
            }
        }
        // Already-buffered entries drain, then the stream ends early.
        assert!((10..100).contains(&n), "popped {n}");
        assert_eq!(q.cancelled(), Some(CancelCause::Cancelled));
        assert!(q.fault().is_none(), "cancellation is not a fault");
    }

    /// Oracle/policy that requests wrong paths like [`AlwaysWrong`] but
    /// fires a cancel token mid-wrong-path, from inside the oracle.
    struct CancelMidWrongPath {
        token: crate::cancel::CancelToken,
        oracle_calls: u32,
    }
    impl BranchOracle for CancelMidWrongPath {
        fn next_fetch_pc(
            &mut self,
            _pc: ffsim_isa::Addr,
            _instr: &Instr,
            computed: BranchOutcome,
        ) -> Option<ffsim_isa::Addr> {
            self.oracle_calls += 1;
            if self.oracle_calls == 2 {
                self.token.expire();
            }
            Some(computed.next_pc)
        }
    }
    impl FrontendPolicy for CancelMidWrongPath {
        fn on_instruction(&mut self, inst: &DynInst) -> Option<WrongPathRequest> {
            let b = inst.branch?;
            if matches!(inst.instr, Instr::Branch { .. }) && !b.taken {
                Some(WrongPathRequest {
                    start: inst.instr.direct_target().unwrap(),
                    max_insts: 64,
                })
            } else {
                None
            }
        }
    }

    #[test]
    fn cancellation_mid_wrong_path_drops_partial_bundle() {
        let token = crate::cancel::CancelToken::new();
        let mut emu = Emulator::new(counted_program(3)).unwrap();
        emu.set_cancel_token(Some(token.clone()));
        let policy = CancelMidWrongPath {
            token,
            oracle_calls: 0,
        };
        let mut q = InstrQueue::new(emu, policy, 16);
        let mut bundles = 0;
        while let Some(e) = q.pop() {
            bundles += u32::from(e.wrong_path.is_some());
        }
        assert_eq!(bundles, 0, "partial bundle must be dropped");
        assert_eq!(q.cancelled(), Some(CancelCause::DeadlineExceeded));
    }

    #[test]
    fn frontend_trace_records_wrong_path_episodes() {
        let mut q = InstrQueue::new(Emulator::new(counted_program(3)).unwrap(), AlwaysWrong, 16)
            .with_watchdog(Some(4))
            .with_trace(EventRing::enabled(64));
        while q.pop().is_some() {}
        let events = q.take_trace();
        // One wrong-path episode, watchdog-limited: enter, trip, exit.
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(kinds, vec!["wrong-path", "watchdog-trip", "wrong-path"]);
        assert!(events.iter().all(|e| e.source == TraceSource::Frontend));
        assert!(matches!(
            events[2].kind,
            TraceEventKind::WrongPathExit { instructions: 4 }
        ));
        assert_eq!(q.trace_dropped(), 0);
    }

    #[test]
    fn disabled_trace_changes_nothing() {
        let run = |trace: bool| {
            let mut q =
                InstrQueue::new(Emulator::new(counted_program(5)).unwrap(), AlwaysWrong, 16);
            if trace {
                q = q.with_trace(EventRing::enabled(64));
            }
            let mut seqs = Vec::new();
            while let Some(e) = q.pop() {
                seqs.push(e.inst.seq);
            }
            (seqs, q.emulator().digest())
        };
        assert_eq!(run(false), run(true), "tracing must not perturb the stream");
    }

    #[test]
    fn watchdog_aborts_under_abort_policy() {
        let mut q = InstrQueue::new(Emulator::new(counted_program(3)).unwrap(), AlwaysWrong, 16)
            .with_watchdog(Some(4))
            .with_fault_policy(FaultPolicy::AbortRun);
        while q.pop().is_some() {}
        assert!(matches!(
            q.fault(),
            Some(Fault::WatchdogExceeded { limit: 4, .. })
        ));
        assert!(q.fault_was_wrong_path());
    }
}
