//! Architectural register state and checkpoints.

use ffsim_isa::{Addr, FReg, Reg, NUM_FP_REGS, NUM_INT_REGS};

/// The architectural register state of the simulated machine: 32 integer
/// registers (with `x0` hard-wired to zero), 16 double-precision FP
/// registers, and the program counter.
///
/// Cloning an `ArchState` is the emulator's *checkpoint* primitive — the
/// analogue of Pin's `PIN_SaveContext`, which the paper's wrong-path
/// emulation technique uses to restore the correct path after emulating
/// down the wrong one (§III-B).
///
/// # Examples
///
/// ```
/// use ffsim_emu::ArchState;
/// use ffsim_isa::Reg;
/// let mut s = ArchState::new(0x1000);
/// s.set_reg(Reg::new(3), 7);
/// let checkpoint = s.clone();
/// s.set_reg(Reg::new(3), 99);
/// assert_eq!(checkpoint.reg(Reg::new(3)), 7);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct ArchState {
    int_regs: [u64; NUM_INT_REGS],
    fp_regs: [f64; NUM_FP_REGS],
    /// The current program counter.
    pub pc: Addr,
}

impl ArchState {
    /// Creates a zeroed register state with the given initial pc.
    #[must_use]
    pub fn new(pc: Addr) -> ArchState {
        ArchState {
            int_regs: [0; NUM_INT_REGS],
            fp_regs: [0.0; NUM_FP_REGS],
            pc,
        }
    }

    /// Reads an integer register (`x0` always reads zero).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.int_regs[r.index()]
    }

    /// Writes an integer register (writes to `x0` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.int_regs[r.index()] = value;
        }
    }

    /// Reads a floating-point register.
    #[must_use]
    pub fn freg(&self, f: FReg) -> f64 {
        self.fp_regs[f.index()]
    }

    /// Writes a floating-point register.
    pub fn set_freg(&mut self, f: FReg, value: f64) {
        self.fp_regs[f.index()] = value;
    }

    /// A 64-bit FNV-1a digest of the register file and pc.
    ///
    /// FP registers are folded by IEEE-754 bit pattern, so the digest is
    /// exact (two states digest equal iff bit-identical, NaN payloads
    /// included). Combined with [`Memory::digest`](crate::Memory::digest)
    /// by the fault-injection harness to compare final architectural state
    /// across runs.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for &r in &self.int_regs {
            fold(r);
        }
        for &f in &self.fp_regs {
            fold(f.to_bits());
        }
        fold(self.pc);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_is_hardwired() {
        let mut s = ArchState::new(0);
        s.set_reg(Reg::ZERO, 42);
        assert_eq!(s.reg(Reg::ZERO), 0);
    }

    #[test]
    fn registers_independent() {
        let mut s = ArchState::new(0);
        for i in 1..32u8 {
            s.set_reg(Reg::new(i), u64::from(i) * 10);
        }
        for i in 0..16u8 {
            s.set_freg(FReg::new(i), f64::from(i) * 0.5);
        }
        for i in 1..32u8 {
            assert_eq!(s.reg(Reg::new(i)), u64::from(i) * 10);
        }
        for i in 0..16u8 {
            assert_eq!(s.freg(FReg::new(i)), f64::from(i) * 0.5);
        }
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let mut s = ArchState::new(0x100);
        s.set_reg(Reg::new(1), 1);
        let cp = s.clone();
        s.set_reg(Reg::new(1), 2);
        s.pc = 0x200;
        assert_ne!(s, cp);
        let restored = cp;
        assert_eq!(restored.reg(Reg::new(1)), 1);
        assert_eq!(restored.pc, 0x100);
    }
}
