//! Property-based tests for the functional emulator: memory model
//! equivalence, execution determinism, wrong-path state isolation, and
//! queue/emulator stream coherence.

use ffsim_emu::{
    BranchOracle, BranchOutcome, DynInst, Emulator, FaultModel, FaultPolicy, FollowComputed,
    FrontendPolicy, InstrQueue, Memory, NoFrontendWrongPath, StepError, WrongPathRequest,
};
use ffsim_isa::{Addr, AluOp, Instr, MemWidth, Program, Reg, INSTR_BYTES};
use proptest::prelude::*;
use std::collections::HashMap;

/// A hostile frontend policy: requests wrong-path emulation every `k`-th
/// instruction from a (possibly corrupted) start pc. Used to prove that
/// whatever the wrong path does — fault, run wild, trip the watchdog — the
/// correct-path stream is untouched under the squash policy.
struct InjectEveryK {
    k: u64,
    seen: u64,
    xor_mask: u64,
    budget: usize,
}

impl BranchOracle for InjectEveryK {
    fn next_fetch_pc(
        &mut self,
        _pc: Addr,
        _instr: &Instr,
        computed: BranchOutcome,
    ) -> Option<Addr> {
        Some(computed.next_pc)
    }
}

impl FrontendPolicy for InjectEveryK {
    fn on_instruction(&mut self, inst: &DynInst) -> Option<WrongPathRequest> {
        self.seen += 1;
        self.seen
            .is_multiple_of(self.k)
            .then_some(WrongPathRequest {
                start: inst.pc ^ self.xor_mask,
                max_insts: self.budget,
            })
    }
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    // x30 is reserved as the data base pointer in generated programs and
    // must never be clobbered, or loads/stores would fault on wild
    // addresses; x31 is left free for the same reason.
    (0u8..30).prop_map(Reg::new)
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
    ]
}

/// A random program: ALU soup over a small aligned data region, with
/// aligned loads/stores and a final halt. Always fault-free.
fn arb_program() -> impl Strategy<Value = Program> {
    let instr =
        prop_oneof![
            (arb_alu_op(), arb_reg(), arb_reg(), arb_reg())
                .prop_map(|(op, rd, rs1, rs2)| Instr::Alu { op, rd, rs1, rs2 }),
            (arb_reg(), -1000i64..1000).prop_map(|(rd, imm)| Instr::LoadImm { rd, imm }),
            // Loads/stores against a fixed aligned base materialized in x30.
            (arb_reg(), 0i64..64).prop_map(|(rd, word)| Instr::Load {
                rd,
                base: Reg::new(30),
                offset: word * 8,
                width: MemWidth::D,
                signed: false,
            }),
            (arb_reg(), 0i64..64).prop_map(|(src, word)| Instr::Store {
                src,
                base: Reg::new(30),
                offset: word * 8,
                width: MemWidth::D,
            }),
            Just(Instr::Nop),
        ];
    proptest::collection::vec(instr, 1..60).prop_map(|body| {
        let mut instrs = vec![Instr::LoadImm {
            rd: Reg::new(30),
            imm: 0x10_0000,
        }];
        instrs.extend(body);
        instrs.push(Instr::Halt);
        Program::new(0x1000, instrs)
    })
}

proptest! {
    /// Memory behaves exactly like a sparse byte map.
    #[test]
    fn memory_matches_reference(
        script in proptest::collection::vec(
            (0u64..0x4_0000u64, prop_oneof![Just(1u64), Just(2), Just(4), Just(8)], any::<u64>(), any::<bool>()),
            0..200,
        )
    ) {
        let mut mem = Memory::new();
        let mut reference: HashMap<u64, u8> = HashMap::new();
        for (addr, width, value, is_write) in script {
            if is_write {
                mem.write_uint(addr, width, value);
                for i in 0..width {
                    reference.insert(addr + i, (value >> (8 * i)) as u8);
                }
            } else {
                let got = mem.read_uint(addr, width);
                let mut expect = 0u64;
                for i in 0..width {
                    expect |= u64::from(*reference.get(&(addr + i)).unwrap_or(&0)) << (8 * i);
                }
                prop_assert_eq!(got, expect);
            }
        }
    }

    /// Two emulators on the same program produce byte-identical streams.
    #[test]
    fn execution_is_deterministic(p in arb_program()) {
        let mut a = Emulator::new(p.clone()).unwrap();
        let mut b = Emulator::new(p).unwrap();
        loop {
            match (a.step(), b.step()) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (Err(x), Err(y)) => { prop_assert_eq!(x, y); break; }
                (x, y) => prop_assert!(false, "divergence: {x:?} vs {y:?}"),
            }
        }
        prop_assert_eq!(a.mem().read_u64(0x10_0000), b.mem().read_u64(0x10_0000));
    }

    /// Sequence numbers are dense and next_pc links chain correctly for
    /// straight-line programs.
    #[test]
    fn stream_is_well_linked(p in arb_program()) {
        let mut emu = Emulator::new(p).unwrap();
        let mut prev: Option<(u64, Addr)> = None;
        while let Ok(inst) = emu.step() {
            if let Some((seq, next_pc)) = prev {
                prop_assert_eq!(inst.seq, seq + 1);
                prop_assert_eq!(inst.pc, next_pc);
            }
            if !matches!(inst.instr, Instr::Halt) {
                prop_assert_eq!(inst.next_pc, inst.pc + INSTR_BYTES);
            }
            prev = Some((inst.seq, inst.next_pc));
        }
    }

    /// Wrong-path emulation at an arbitrary point with an arbitrary start
    /// never perturbs registers, pc, or memory.
    #[test]
    fn wrong_path_is_hermetic(
        p in arb_program(),
        warmup in 0u64..32,
        start_word in 0u64..128,
        budget in 1usize..64,
    ) {
        let mut emu = Emulator::new(p.clone()).unwrap();
        let _ = emu.run_to_halt(warmup);
        let state_before = emu.checkpoint();
        let mem_words: Vec<u64> = (0..64).map(|i| emu.mem().read_u64(0x10_0000 + i * 8)).collect();
        // Start anywhere, including outside the text image.
        let start = 0x1000 + start_word * INSTR_BYTES;
        let _ = emu.emulate_wrong_path(start, budget, &mut FollowComputed);
        prop_assert_eq!(emu.checkpoint(), state_before);
        for (i, w) in mem_words.iter().enumerate() {
            prop_assert_eq!(emu.mem().read_u64(0x10_0000 + i as u64 * 8), *w);
        }
        // And the correct path still completes identically to a fresh run.
        let mut fresh = Emulator::new(p).unwrap();
        let _ = fresh.run_to_halt(warmup);
        loop {
            match (emu.step(), fresh.step()) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (Err(StepError::Halted), Err(StepError::Halted)) => break,
                (x, y) => prop_assert!(false, "divergence after wp: {x:?} vs {y:?}"),
            }
        }
    }

    /// The queue yields exactly the emulator's stream, regardless of an
    /// interleaved pattern of peeks and pops.
    #[test]
    fn queue_matches_direct_stream(
        p in arb_program(),
        peeks in proptest::collection::vec(0usize..16, 0..64),
        depth in 1usize..64,
    ) {
        let mut direct = Emulator::new(p.clone()).unwrap();
        let mut q = InstrQueue::new(Emulator::new(p).unwrap(), NoFrontendWrongPath, depth);
        let mut peek_iter = peeks.into_iter().cycle();
        loop {
            // Random peeking must not disturb the stream.
            if let Some(k) = peek_iter.next() {
                let _ = q.peek(k % depth);
            }
            match (q.pop(), direct.step()) {
                (Some(entry), Ok(inst)) => {
                    prop_assert_eq!(entry.inst, inst);
                    prop_assert!(entry.wrong_path.is_none());
                }
                (None, Err(StepError::Halted)) => break,
                (a, b) => prop_assert!(false, "queue/direct divergence: {a:?} vs {b:?}"),
            }
        }
    }

    /// Wrong-path budget is respected exactly: never more instructions than
    /// requested.
    #[test]
    fn wrong_path_budget_respected(p in arb_program(), budget in 0usize..32) {
        let mut emu = Emulator::new(p.clone()).unwrap();
        let bundle = emu.emulate_wrong_path(p.entry(), budget, &mut FollowComputed);
        prop_assert!(bundle.insts.len() <= budget);
    }

    /// Squash invariance: injecting wrong-path emulation at random points —
    /// with corrupted start pcs, a strict fault model, and a tiny watchdog —
    /// never changes the correct-path stream or the final architectural
    /// state under `FaultPolicy::SquashWrongPath`.
    #[test]
    fn wrong_path_fault_injection_is_squashed(
        p in arb_program(),
        k in 1u64..8,
        xor_mask in prop_oneof![Just(0u64), Just(8), Just(0x40), Just(0xffff_0000)],
        budget in 1usize..48,
        watchdog in 1u64..32,
    ) {
        let injected_policy = InjectEveryK { k, seen: 0, xor_mask, budget };
        let mut injected = InstrQueue::new(Emulator::new(p.clone()).unwrap(), injected_policy, 32)
            .with_fault_policy(FaultPolicy::SquashWrongPath)
            .with_watchdog(Some(watchdog));
        // A strict fault model bounding data accesses to just past the
        // program's 64-word data region, so wild wrong paths fault readily.
        // (trap_div_zero stays off: it would also trap the *correct* path,
        // which arb_program allows to divide by zero.)
        injected.emulator_mut().set_fault_model(FaultModel {
            trap_div_zero: false,
            addr_limit: Some(0x10_0000 + 64 * 8),
        });
        let mut clean = InstrQueue::new(
            Emulator::new(p).unwrap(),
            NoFrontendWrongPath,
            32,
        );
        loop {
            match (injected.pop(), clean.pop()) {
                (Some(a), Some(b)) => prop_assert_eq!(a.inst, b.inst),
                (None, None) => break,
                (a, b) => prop_assert!(false, "stream divergence: {a:?} vs {b:?}"),
            }
        }
        prop_assert!(injected.fault().is_none(), "squash policy never ends the stream");
        prop_assert_eq!(injected.emulator().digest(), clean.emulator().digest());
    }
}
