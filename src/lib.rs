//! # wrong-path-sim
//!
//! A from-scratch Rust reproduction of *“Simulating Wrong-Path
//! Instructions in Decoupled Functional-First Simulation”* (Eyerman, Van
//! den Steen, Heirman, Hur — Intel; ISPASS 2023): a decoupled
//! functional-first out-of-order processor simulator with four wrong-path
//! modeling techniques, the workloads to exercise them, and the harness
//! that regenerates every table and figure of the paper's evaluation.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`isa`] — instruction set, registers, programs, assembler,
//! * [`emu`] — the functional emulator (Pin substitute) with
//!   checkpointing and wrong-path emulation, plus the decoupled
//!   instruction queue,
//! * [`uarch`] — caches, TLBs, DRAM, branch predictors, core config,
//! * [`core`] — the timing model and the wrong-path techniques
//!   (the paper's contribution),
//! * [`workloads`] — GAP graph kernels and the SPEC-like suite.
//!
//! # Examples
//!
//! ```
//! use wrong_path_sim::core::{run_all_modes, WrongPathMode};
//! use wrong_path_sim::emu::Memory;
//! use wrong_path_sim::isa::{Asm, Reg};
//! use wrong_path_sim::uarch::CoreConfig;
//!
//! let mut a = Asm::new();
//! a.li(Reg::new(1), 1000);
//! a.label("loop");
//! a.addi(Reg::new(1), Reg::new(1), -1);
//! a.bnez(Reg::new(1), "loop");
//! a.halt();
//!
//! let results = run_all_modes(
//!     &a.assemble()?,
//!     &Memory::new(),
//!     &CoreConfig::tiny_for_tests(),
//!     None,
//! )?;
//! assert_eq!(results.len(), WrongPathMode::ALL.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use ffsim_core as core;
pub use ffsim_emu as emu;
pub use ffsim_isa as isa;
pub use ffsim_uarch as uarch;
pub use ffsim_workloads as workloads;
