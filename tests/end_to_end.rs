//! Cross-crate integration tests: full decoupled simulations over real
//! workloads, exercising every crate together.

use wrong_path_sim::core::{run_all_modes, SimConfig, Simulator, WrongPathMode};
use wrong_path_sim::emu::{Emulator, Memory};
use wrong_path_sim::isa::{Asm, Reg};
use wrong_path_sim::uarch::{CoreConfig, PathKind};
use wrong_path_sim::workloads::{gap, speclike, Graph};

fn small_core() -> CoreConfig {
    CoreConfig::tiny_for_tests()
}

fn bfs_workload() -> wrong_path_sim::workloads::Workload {
    let g = Graph::rmat(1 << 10, 8, 7);
    gap::bfs(&g, g.max_degree_vertex()).unwrap()
}

#[test]
fn all_modes_simulate_identical_instruction_streams() {
    let w = bfs_workload();
    let results = run_all_modes(w.program(), w.memory(), &small_core(), Some(60_000)).unwrap();
    for pair in results.windows(2) {
        assert_eq!(pair[0].instructions, pair[1].instructions);
        assert_eq!(
            pair[0].branch.cond_branches, pair[1].branch.cond_branches,
            "the timing model's branch stream must be mode-independent"
        );
        assert_eq!(pair[0].branch.mispredicts(), pair[1].branch.mispredicts());
    }
}

#[test]
fn simulation_is_deterministic() {
    let w = bfs_workload();
    for mode in WrongPathMode::ALL {
        let mut cfg = SimConfig::with_core(small_core(), mode);
        cfg.max_instructions = Some(40_000);
        let a = Simulator::new(w.program().clone(), w.memory().clone(), cfg.clone())
            .unwrap()
            .run()
            .unwrap();
        let b = Simulator::new(w.program().clone(), w.memory().clone(), cfg)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.cycles, b.cycles, "{mode}: cycles must be reproducible");
        assert_eq!(a.wrong_path_instructions, b.wrong_path_instructions);
        assert_eq!(a.l1d.misses, b.l1d.misses);
    }
}

#[test]
fn mode_invariants_hold_on_graph_workload() {
    let w = bfs_workload();
    let [nowp, instrec, conv, wpemul] =
        run_all_modes(w.program(), w.memory(), &small_core(), Some(60_000)).unwrap();

    // nowp: no wrong-path activity anywhere.
    assert_eq!(nowp.wrong_path_instructions, 0);
    assert_eq!(nowp.l1d.misses.get(PathKind::Wrong), 0);
    assert_eq!(nowp.l1i.misses.get(PathKind::Wrong), 0);

    // instrec: wrong-path instructions flow, but never touch the D-cache.
    assert!(instrec.wrong_path_instructions > 0);
    assert_eq!(instrec.l1d.hits.get(PathKind::Wrong), 0);
    assert_eq!(instrec.l1d.misses.get(PathKind::Wrong), 0);

    // conv: wrong-path D-cache accesses happen for recovered addresses.
    assert!(conv.wrong_path_instructions > 0);
    assert!(
        conv.l1d.hits.get(PathKind::Wrong) + conv.l1d.misses.get(PathKind::Wrong) > 0,
        "convergence recovery must produce wrong-path data accesses"
    );
    assert!(conv.convergence.converged > 0);
    assert!(conv.convergence.conv_frac() > 0.5, "graph code converges");

    // wpemul: the most wrong-path data accesses of all techniques.
    assert!(
        wpemul.l1d.misses.get(PathKind::Wrong) >= conv.l1d.misses.get(PathKind::Wrong),
        "emulation sees at least as many wrong-path misses as recovery"
    );
}

#[test]
fn wrong_path_fraction_ordering_matches_table2() {
    let w = bfs_workload();
    let [_, instrec, conv, wpemul] =
        run_all_modes(w.program(), w.memory(), &small_core(), Some(60_000)).unwrap();
    // On the tiny test core the ordering is statistical (the IQ/ROB are so
    // small that backpressure quantization dominates); allow 15% slack.
    // The strict ordering is asserted at experiment scale by the
    // `table2_wp_fraction` harness (6/6 benchmarks).
    assert!(
        instrec.wrong_path_fraction() >= conv.wrong_path_fraction() * 0.85,
        "instrec models wp loads as hits and so runs further down the wrong path: {} vs {}",
        instrec.wrong_path_fraction(),
        conv.wrong_path_fraction()
    );
    assert!(conv.wrong_path_fraction() >= wpemul.wrong_path_fraction() * 0.85);
}

#[test]
fn timing_simulation_does_not_corrupt_functional_results() {
    // The timing model consumes the same emulator the validator checks:
    // run the functional engine standalone and ensure results validate
    // even after heavy wrong-path emulation in the frontend.
    let w = bfs_workload();
    let mut cfg = SimConfig::with_core(small_core(), WrongPathMode::WrongPathEmulation);
    cfg.max_instructions = None; // run to halt
    let result = Simulator::new(w.program().clone(), w.memory().clone(), cfg)
        .unwrap()
        .run()
        .unwrap();
    assert!(result.instructions > 0);

    // Replay functionally and validate against the Rust reference.
    let mut emu = Emulator::with_memory(w.program().clone(), w.memory().clone()).unwrap();
    emu.run_to_halt(100_000_000).expect("runs to halt");
    w.validate(emu.mem())
        .expect("wrong-path emulation must not alter results");
}

#[test]
fn speclike_suite_runs_under_all_modes() {
    for kernel in speclike::all_speclike(0, 5) {
        let w = &kernel.workload;
        let results = run_all_modes(w.program(), w.memory(), &small_core(), Some(20_000)).unwrap();
        for r in &results {
            assert!(r.cycles > 0);
            assert!(
                r.ipc() > 0.0 && r.ipc() <= 8.0,
                "{}: ipc {}",
                w.name(),
                r.ipc()
            );
        }
    }
}

#[test]
fn facade_reexports_work_together() {
    // Build a program through the facade paths only.
    let mut a = Asm::new();
    a.li(Reg::new(1), 64);
    a.label("l");
    a.addi(Reg::new(1), Reg::new(1), -1);
    a.bnez(Reg::new(1), "l");
    a.halt();
    let program = a.assemble().unwrap();
    let results = run_all_modes(&program, &Memory::new(), &small_core(), None).unwrap();
    assert_eq!(results[0].instructions, 1 + 64 * 2 + 1);
}

#[test]
fn max_instructions_is_respected_in_every_mode() {
    let w = bfs_workload();
    for mode in WrongPathMode::ALL {
        let mut cfg = SimConfig::with_core(small_core(), mode);
        cfg.max_instructions = Some(12_345);
        let r = Simulator::new(w.program().clone(), w.memory().clone(), cfg)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.instructions, 12_345, "{mode}");
    }
}
