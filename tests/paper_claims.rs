//! The paper's qualitative claims, asserted as integration tests at small
//! scale. These are the load-bearing properties of the reproduction: if a
//! refactor breaks one of these, the experiments no longer say what the
//! paper says.

use wrong_path_sim::core::{run_all_modes, SimResult};
use wrong_path_sim::uarch::{CoreConfig, PathKind};
use wrong_path_sim::workloads::{gap, speclike, Graph, Workload};

/// A mid-size core: big enough for realistic wrong paths, small caches so
/// a small graph still misses.
fn core() -> CoreConfig {
    let mut c = CoreConfig::golden_cove_like();
    c.rob_size = 128;
    c.iq_size = 64;
    c.l1d.size_bytes = 4 * 1024;
    c.l1d.assoc = 4;
    c.l2.size_bytes = 32 * 1024;
    c.l2.assoc = 8;
    c.llc.size_bytes = 128 * 1024;
    c.llc.assoc = 8;
    c.queue_depth = 512;
    c
}

fn run_gap(kernel: &str) -> [SimResult; 4] {
    let g = Graph::rmat(1 << 11, 12, 42);
    let src = g.max_degree_vertex();
    let w: Workload = match kernel {
        "bfs" => gap::bfs(&g, src).unwrap(),
        "sssp" => gap::sssp(&g, src, 3).unwrap(),
        "pr" => gap::pr(&g, 2).unwrap(),
        other => panic!("unexpected kernel {other}"),
    };
    run_all_modes(w.program(), w.memory(), &core(), Some(250_000)).unwrap()
}

/// Fig. 1: not modeling the wrong path *underestimates* performance on
/// converging, branch-miss-heavy graph code.
#[test]
fn claim_nowp_underestimates_on_converging_code() {
    let [nowp, _, _, wpemul] = run_gap("bfs");
    let err = nowp.error_vs(&wpemul);
    assert!(
        err < -2.0,
        "expected a clearly negative error on bfs, got {err:+.2}%"
    );
}

/// Fig. 1: the wrong path prefetches for the correct path — correct-path
/// L2 misses drop under wrong-path emulation.
#[test]
fn claim_wrong_path_prefetches_for_correct_path() {
    let [nowp, _, _, wpemul] = run_gap("bfs");
    let nowp_misses = nowp.l2.misses.get(PathKind::Correct);
    let emul_misses = wpemul.l2.misses.get(PathKind::Correct);
    assert!(
        emul_misses < nowp_misses,
        "wrong-path execution must convert correct-path misses into hits \
         ({nowp_misses} -> {emul_misses})"
    );
}

/// §V-A: instruction reconstruction alone barely helps GAP (tiny
/// instruction footprint, addresses unknown).
#[test]
fn claim_instrec_alone_does_not_help_gap() {
    let [nowp, instrec, _, wpemul] = run_gap("bfs");
    let gap_between = (instrec.error_vs(&wpemul) - nowp.error_vs(&wpemul)).abs();
    assert!(
        gap_between < 2.0,
        "instrec should be within 2% of nowp on GAP, differed by {gap_between:.2}%"
    );
}

/// §V-A: convergence exploitation recovers a significant share of the
/// error on converging code.
#[test]
fn claim_convergence_reduces_error_on_converging_code() {
    for kernel in ["bfs", "sssp"] {
        let [nowp, _, conv, wpemul] = run_gap(kernel);
        let e_nowp = nowp.error_vs(&wpemul).abs();
        let e_conv = conv.error_vs(&wpemul).abs();
        assert!(
            e_conv < e_nowp * 0.8,
            "{kernel}: conv |{e_conv:.2}%| must be well below nowp |{e_nowp:.2}%|"
        );
    }
}

/// Fig. 1: pagerank's inner loop has no data-dependent conditional
/// branch, so it is much less sensitive than bfs/sssp.
#[test]
fn claim_pr_is_least_sensitive() {
    let [pr_nowp, _, _, pr_emul] = run_gap("pr");
    let [bfs_nowp, _, _, bfs_emul] = run_gap("bfs");
    assert!(
        pr_nowp.error_vs(&pr_emul).abs() < bfs_nowp.error_vs(&bfs_emul).abs(),
        "pr must be less wrong-path sensitive than bfs"
    );
}

/// Fig. 4: regular FP code is insensitive to wrong-path modeling under
/// every technique.
#[test]
fn claim_fp_kernels_are_insensitive() {
    let w = speclike::stream_triad(1 << 12, 3).unwrap();
    let results = run_all_modes(w.program(), w.memory(), &core(), None).unwrap();
    let reference = &results[3];
    for r in &results[..3] {
        let err = r.error_vs(reference).abs();
        assert!(
            err < 0.5,
            "{}: fp error should be ~0, got {err:.2}%",
            r.mode
        );
    }
}

/// §V-C / Table II: instrec executes the most wrong-path instructions
/// (its wrong-path memory ops are all modeled as hits, so the wrong path
/// runs ahead faster), emulation the fewest.
#[test]
fn claim_wp_instruction_count_ordering() {
    // Ordering is statistical at reduced scale; allow slack. The strict
    // 6/6 ordering is checked at experiment scale by `table2_wp_fraction`.
    let [_, instrec, conv, wpemul] = run_gap("bfs");
    assert!(
        instrec.wrong_path_instructions as f64 >= conv.wrong_path_instructions as f64 * 0.9,
        "instrec {} vs conv {}",
        instrec.wrong_path_instructions,
        conv.wrong_path_instructions
    );
    assert!(
        conv.wrong_path_instructions as f64 >= wpemul.wrong_path_instructions as f64 * 0.9,
        "conv {} vs wpemul {}",
        conv.wrong_path_instructions,
        wpemul.wrong_path_instructions
    );
}

/// Table III: bfs converges for the vast majority of branch misses within
/// tens of instructions.
#[test]
fn claim_graph_code_converges() {
    let [_, _, conv, _] = run_gap("bfs");
    let c = &conv.convergence;
    assert!(c.conv_frac() > 0.8, "conv frac {:.2}", c.conv_frac());
    assert!(
        c.avg_distance() < 64.0,
        "convergence distance {:.1} should be well under the ROB size",
        c.avg_distance()
    );
    assert!(c.recover_frac() > 0.05, "recover {:.2}", c.recover_frac());
}

/// §V-B: simulated *work* ordering — wrong-path techniques process more
/// instructions through the pipeline, so nowp is the cheapest. (Host
/// wall-clock is too noisy for CI; instruction throughput is the stable
/// proxy.)
#[test]
fn claim_wrong_path_modeling_costs_simulation_work() {
    let [nowp, instrec, conv, wpemul] = run_gap("bfs");
    let total = |r: &SimResult| r.instructions + r.wrong_path_instructions;
    assert!(total(&instrec) > total(&nowp));
    assert!(total(&conv) > total(&nowp));
    assert!(total(&wpemul) > total(&nowp));
}
