//! Bring your own workload: write a kernel against the assembler API,
//! give it a validator, and study how wrong-path modeling affects its
//! projection.
//!
//! The kernel here is a histogram over random bytes — a classic
//! "data-dependent store address" pattern: the wrong path cannot recover
//! most histogram addresses (they depend on loaded data), so convergence
//! exploitation helps less than on the GAP kernels. Building it yourself
//! shows every integration step end to end.
//!
//! Run with:
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use ffsim_core::run_all_modes;
use ffsim_emu::Memory;
use ffsim_isa::{Asm, Reg};
use ffsim_uarch::CoreConfig;
use ffsim_workloads::{DataLayout, Workload};

fn build_histogram_workload(len: usize, seed: u64) -> Workload {
    // Deterministic pseudo-random input bytes (xorshift).
    let mut x = seed | 1;
    let input: Vec<u8> = (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 5) as u8
        })
        .collect();

    // Reference histogram: only bytes >= 128 are counted (the
    // hard-to-predict filter that creates wrong paths).
    let mut expect = [0u64; 256];
    for &b in &input {
        if b >= 128 {
            expect[b as usize] += 1;
        }
    }

    // Data segments.
    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let input_base = layout.alloc_bytes(&mut mem, &input);
    let hist_base = layout.alloc_u64_zeroed(256);

    // The kernel.
    let (ib, hb, i, n, b, t1, t2) = (
        Reg::new(5),
        Reg::new(6),
        Reg::new(10),
        Reg::new(11),
        Reg::new(12),
        Reg::new(13),
        Reg::new(14),
    );
    let thr = Reg::new(15);
    let mut a = Asm::new();
    a.li(ib, input_base as i64);
    a.li(hb, hist_base as i64);
    a.li(i, 0);
    a.li(n, len as i64);
    a.li(thr, 128);
    a.label("loop");
    a.bge(i, n, "done");
    a.add(t1, i, ib);
    a.lbu(b, 0, t1); // b = input[i]
    a.addi(i, i, 1);
    a.blt(b, thr, "loop"); // ~50% data-dependent filter branch
    a.slli(t1, b, 3);
    a.add(t1, t1, hb);
    a.ld(t2, 0, t1); // hist[b]
    a.addi(t2, t2, 1);
    a.sd(t2, 0, t1); // hist[b] += 1   (data-dependent address!)
    a.j("loop");
    a.label("done");
    a.halt();

    Workload::new("histogram", a.assemble().expect("assembles"), mem).with_validator(Box::new(
        move |m| {
            for (bucket, &want) in expect.iter().enumerate() {
                let got = m.read_u64(hist_base + bucket as u64 * 8);
                if got != want {
                    return Err(format!("hist[{bucket}] = {got}, expected {want}"));
                }
            }
            Ok(())
        },
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = build_histogram_workload(400_000, 0xDECAF);

    // Functional correctness first.
    let executed = w.run_and_validate(50_000_000).map_err(|e| e.to_string())?;
    println!("histogram kernel: {executed} instructions, results VALID\n");

    // Then timing under the four techniques.
    let core = CoreConfig::golden_cove_like();
    let results = run_all_modes(w.program(), w.memory(), &core, None)?;
    let reference = results[3].clone();
    for r in &results {
        println!(
            "{:8} ipc {:.3}  error {:+6.2}%  wp instructions {:5.1}%",
            r.mode.label(),
            r.ipc(),
            r.error_vs(&reference),
            r.wrong_path_fraction()
        );
    }
    println!("\nhistogram addresses depend on loaded bytes, so the convergence");
    println!("technique can recover the input-scan loads but not most histogram");
    println!("accesses — compare with `cargo run --release --example graph_analytics`.");
    Ok(())
}
