//! Accuracy-vs-speed frontier of the wrong-path techniques.
//!
//! Sweeps the SPEC-like kernels and reports, per technique, the average
//! projection error against wrong-path emulation and the host-time
//! slowdown against no-wrong-path modeling — the trade-off that is the
//! paper's central conclusion (convergence exploitation as the balanced
//! point).
//!
//! Run with:
//! ```sh
//! cargo run --release --example technique_comparison
//! ```

use ffsim_core::{SimConfig, SimResult, Simulator, WrongPathMode};
use ffsim_uarch::CoreConfig;
use ffsim_workloads::speclike::{all_speclike, SpecCategory};

fn main() {
    let core = CoreConfig::golden_cove_like();
    let suite = all_speclike(1, 7);
    let max_instructions = 800_000;

    let mut err_sum = [0.0f64; 3];
    let mut slow_sum = [0.0f64; 3];
    let mut rows = Vec::new();

    for kernel in &suite {
        let w = &kernel.workload;
        let results: Vec<SimResult> = WrongPathMode::ALL
            .iter()
            .map(|&mode| {
                let mut cfg = SimConfig::with_core(core.clone(), mode);
                cfg.max_instructions = Some(max_instructions);
                Simulator::new(w.program().clone(), w.memory().clone(), cfg)
                    .and_then(ffsim_core::Simulator::run)
                    .expect("workload must simulate cleanly")
            })
            .collect();
        let (nowp, wpemul) = (&results[0], &results[3]);
        let tag = match kernel.category {
            SpecCategory::Int => "INT",
            SpecCategory::Fp => "FP ",
        };
        let mut cells = format!("{tag} {:16}", w.name());
        for m in 0..3 {
            let err = results[m].error_vs(wpemul);
            let slow = results[m].slowdown_vs(nowp);
            err_sum[m] += err.abs();
            slow_sum[m] += slow;
            cells.push_str(&format!("  {err:+7.2}% ({slow:4.2}x)"));
        }
        rows.push(cells);
    }

    println!("error vs wpemul (slowdown vs nowp), per technique:\n");
    println!(
        "    {:16}  {:>16}  {:>16}  {:>16}",
        "kernel", "nowp", "instrec", "conv"
    );
    for row in rows {
        println!("{row}");
    }
    let n = suite.len() as f64;
    println!("\naccuracy-speed frontier (average over the suite):");
    for (m, label) in ["nowp", "instrec", "conv"].iter().enumerate() {
        println!(
            "  {label:8} avg |error| {:5.2}%   avg slowdown {:4.2}x",
            err_sum[m] / n,
            slow_sum[m] / n
        );
    }
    println!("  wpemul   avg |error|  0.00%   (reference; slowest technique)");
    println!("\nthe paper's conclusion: conv ~ instrec speed with a fraction of the");
    println!("error -- the best accuracy/speed balance of the three.");
}
