//! Graph analytics on the simulator: run a GAP kernel (BFS by default, or
//! any kernel by name) over an RMAT graph, validate the computed result
//! against the Rust reference, and compare wrong-path techniques.
//!
//! Run with:
//! ```sh
//! cargo run --release --example graph_analytics [bc|bfs|cc|pr|sssp|tc] [scale]
//! ```

use ffsim_core::{run_all_modes, SimConfig, Simulator, WrongPathMode};
use ffsim_emu::Emulator;
use ffsim_uarch::CoreConfig;
use ffsim_workloads::{gap, Graph, Workload};

fn build(kernel: &str, g: &Graph) -> Result<Workload, Box<dyn std::error::Error>> {
    let src = g.max_degree_vertex();
    Ok(match kernel {
        "bc" => gap::bc(g, src)?,
        "bfs" => gap::bfs(g, src)?,
        "cc" => gap::cc(g)?,
        "pr" => gap::pr(g, 3)?,
        "sssp" => gap::sssp(g, src, 7)?,
        "tc" => gap::tc(g)?,
        other => {
            return Err(format!("unknown kernel `{other}` (expected bc|bfs|cc|pr|sssp|tc)").into())
        }
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let kernel = args.next().unwrap_or_else(|| "bfs".into());
    let scale: u32 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(12);

    println!("generating RMAT graph (2^{scale} vertices, avg degree 16)...");
    let g = Graph::rmat(1 << scale, 16, 42);
    println!(
        "  {} vertices, {} directed edges, max degree {}",
        g.num_vertices(),
        g.num_edges(),
        g.degree(g.max_degree_vertex())
    );

    let w = build(&kernel, &g)?;
    println!(
        "kernel `{}`: {} static instructions",
        w.name(),
        w.program().len()
    );

    // First: functional-only execution with result validation against the
    // Rust reference implementation.
    let mut emu = Emulator::with_memory(w.program().clone(), w.memory().clone())?;
    let executed = emu.run_to_halt(500_000_000)?;
    w.validate(emu.mem())
        .map_err(|e| format!("validation failed: {e}"))?;
    println!("functional run: {executed} instructions, results VALID\n");

    // Then: timing simulation under all four wrong-path techniques.
    let core = CoreConfig::golden_cove_like();
    let cap = executed.min(3_000_000);
    println!("timing simulation ({cap} instructions) under all four modes:");
    let results = run_all_modes(w.program(), w.memory(), &core, Some(cap))?;
    let reference = results[3].clone();
    for r in &results {
        println!(
            "  {:8} ipc {:.3}  error {:+6.2}%  wrong-path instructions {:6.1}%",
            r.mode.label(),
            r.ipc(),
            r.error_vs(&reference),
            r.wrong_path_fraction()
        );
    }

    // Convergence-technique internals (the paper's Table III view).
    let mut cfg = SimConfig::with_core(core, WrongPathMode::ConvergenceExploitation);
    cfg.max_instructions = Some(cap);
    let conv = Simulator::new(w.program().clone(), w.memory().clone(), cfg)?.run()?;
    let c = &conv.convergence;
    println!(
        "\nconvergence internals: {:.0}% of branch misses converge after {:.1} \
         instructions on average; {:.0}% of executed wrong-path memory \
         operations recovered their address",
        c.conv_frac() * 100.0,
        c.avg_distance(),
        c.recover_frac() * 100.0
    );
    Ok(())
}
