//! Quickstart: assemble a small program, run it through the decoupled
//! functional-first simulator under all four wrong-path modeling
//! techniques, and compare the projections.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ffsim_core::{run_all_modes, WrongPathMode};
use ffsim_emu::Memory;
use ffsim_isa::{Asm, Reg};
use ffsim_uarch::CoreConfig;
use ffsim_workloads::DataLayout;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny pointer-chasing loop with a data-dependent branch: the kind
    // of code where wrong-path execution changes cache state.
    let n: usize = 1 << 14;
    let steps: i64 = 200_000;

    // Build the data segment: a single-cycle random permutation to chase
    // (Sattolo's algorithm over a xorshift stream), plus a flags array
    // driving a hard-to-predict branch.
    let mut mem = Memory::new();
    let mut layout = DataLayout::new();
    let mut rng_state = 0x853c_49e6_748f_ea9bu64;
    let mut rng = move |bound: u64| {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state % bound
    };
    let mut next: Vec<u64> = (0..n as u64).collect();
    for i in (1..n).rev() {
        next.swap(i, rng(i as u64) as usize);
    }
    let flags: Vec<u64> = (0..n).map(|_| rng(2)).collect();
    let next_base = layout.alloc_u64_array(&mut mem, &next);
    let flag_base = layout.alloc_u64_array(&mut mem, &flags);

    // The program: chase the permutation; whenever the current node's
    // flag is set, also touch a second array element (the branchy part).
    let (cur, count, t1, t2, nb, fb, acc) = (
        Reg::new(10),
        Reg::new(11),
        Reg::new(12),
        Reg::new(13),
        Reg::new(5),
        Reg::new(6),
        Reg::new(14),
    );
    let mut a = Asm::new();
    a.li(nb, next_base as i64);
    a.li(fb, flag_base as i64);
    a.li(cur, 0);
    a.li(acc, 0);
    a.li(count, steps);
    a.label("loop");
    a.slli(t1, cur, 3);
    a.add(t2, t1, fb);
    a.ld(t2, 0, t2); // flag[cur]
    a.beqz(t2, "skip"); // data-dependent branch
    a.add(acc, acc, cur);
    a.label("skip");
    a.add(t1, t1, nb);
    a.ld(cur, 0, t1); // cur = next[cur]
    a.addi(count, count, -1);
    a.bnez(count, "loop");
    a.halt();
    let program = a.assemble()?;

    // Simulate under all four techniques on the Golden Cove-like core.
    println!("simulating {steps} loop iterations under all four wrong-path modes...\n");
    let core = CoreConfig::golden_cove_like();
    let results = run_all_modes(&program, &mem, &core, None)?;
    let reference = results[WrongPathMode::ALL
        .iter()
        .position(|m| *m == WrongPathMode::WrongPathEmulation)
        .expect("emulation mode present")]
    .clone();

    println!(
        "{:10} {:>8} {:>10} {:>12} {:>10}",
        "mode", "IPC", "error", "wp-instr", "host time"
    );
    for r in &results {
        println!(
            "{:10} {:8.3} {:+9.2}% {:11.1}% {:9.0}ms",
            r.mode.label(),
            r.ipc(),
            r.error_vs(&reference),
            r.wrong_path_fraction(),
            r.wall_time.as_secs_f64() * 1000.0,
        );
    }
    println!(
        "\nbranch MPKI {:.2}, correct-path L2 MPKI {:.2} (reference run)",
        reference.branch_mpki(),
        reference.l2_mpki()
    );
    println!("negative error = the technique underestimates performance because it");
    println!("misses the wrong path's cache prefetching (the paper's core finding).");
    Ok(())
}
